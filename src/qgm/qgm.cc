#include "qgm/qgm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>

#include "common/str_util.h"
#include "expr/expr_rewrite.h"

namespace sumtab {
namespace qgm {

int Box::OutputIndex(const std::string& name) const {
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Box* Graph::AddBox(Box::Kind kind) {
  auto box = std::make_unique<Box>();
  box->id = static_cast<BoxId>(boxes_.size());
  box->kind = kind;
  boxes_.push_back(std::move(box));
  return boxes_.back().get();
}

std::vector<BoxId> Graph::Parents(BoxId id) const {
  std::vector<BoxId> parents;
  for (const auto& box : boxes_) {
    for (const Quantifier& q : box->quantifiers) {
      if (q.child == id) {
        parents.push_back(box->id);
        break;
      }
    }
  }
  return parents;
}

std::vector<BoxId> Graph::TopologicalOrder() const {
  std::vector<BoxId> order;
  std::vector<char> visited(boxes_.size(), 0);
  std::function<void(BoxId)> visit = [&](BoxId id) {
    if (id == kInvalidBox || visited[id]) return;
    visited[id] = 1;
    for (const Quantifier& q : boxes_[id]->quantifiers) visit(q.child);
    order.push_back(id);
  };
  visit(root_);
  return order;
}

int Graph::Rank(BoxId id) const {
  const Box* b = box(id);
  int rank = 0;
  for (const Quantifier& q : b->quantifiers) {
    rank = std::max(rank, 1 + Rank(q.child));
  }
  return rank;
}

BoxId Graph::CloneSubgraph(const Graph& src, BoxId src_root) {
  std::map<BoxId, BoxId> mapping;
  std::function<BoxId(BoxId)> clone = [&](BoxId id) -> BoxId {
    auto it = mapping.find(id);
    if (it != mapping.end()) return it->second;
    const Box* original = src.box(id);
    // Clone children first; AddBox may invalidate `original` if src == this,
    // so copy the box value up front.
    Box copy = *original;
    for (Quantifier& q : copy.quantifiers) {
      q.child = clone(q.child);
    }
    Box* fresh = AddBox(copy.kind);
    BoxId fresh_id = fresh->id;
    copy.id = fresh_id;
    *fresh = std::move(copy);
    mapping[id] = fresh_id;
    return fresh_id;
  };
  return clone(src_root);
}

Graph Graph::CloneGraph(const Graph& src) {
  Graph out;
  out.root_ = out.CloneSubgraph(src, src.root_);
  out.order_by_ = src.order_by_;
  return out;
}

void Graph::Compact() {
  std::vector<BoxId> keep = TopologicalOrder();
  std::vector<int> remap(boxes_.size(), -1);
  std::vector<std::unique_ptr<Box>> fresh;
  fresh.reserve(keep.size());
  for (BoxId id : keep) {
    remap[id] = static_cast<int>(fresh.size());
    fresh.push_back(std::move(boxes_[id]));
  }
  for (auto& box : fresh) {
    box->id = remap[box->id];
    for (Quantifier& q : box->quantifiers) {
      q.child = remap[q.child];
    }
  }
  boxes_ = std::move(fresh);
  root_ = remap[root_];
}

namespace {

StatusOr<ColumnInfo> LiteralInfo(const Value& v) {
  ColumnInfo info;
  switch (v.kind()) {
    case Value::Kind::kNull:
      info.type = Type::kInt;
      info.nullable = true;
      break;
    case Value::Kind::kInt:
      info.type = Type::kInt;
      break;
    case Value::Kind::kDouble:
      info.type = Type::kDouble;
      break;
    case Value::Kind::kString:
      info.type = Type::kString;
      break;
    case Value::Kind::kDate:
      info.type = Type::kDate;
      break;
    case Value::Kind::kBool:
      info.type = Type::kBool;
      break;
  }
  return info;
}

}  // namespace

StatusOr<ColumnInfo> ExprInfo(const expr::ExprPtr& e, const Box& box,
                              const Graph& graph) {
  using expr::Expr;
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      return LiteralInfo(e->literal);

    case Expr::Kind::kColumnRef: {
      if (e->quantifier < 0 ||
          e->quantifier >= static_cast<int>(box.quantifiers.size())) {
        return Status::Internal("column ref quantifier out of range");
      }
      const Quantifier& q = box.quantifiers[e->quantifier];
      const Box* child = graph.box(q.child);
      if (e->column < 0 ||
          e->column >= static_cast<int>(child->column_info.size())) {
        return Status::Internal("column ref column out of range");
      }
      ColumnInfo info = child->column_info[e->column];
      // A scalar subquery with zero rows yields NULL.
      if (q.kind == Quantifier::Kind::kScalar) info.nullable = true;
      return info;
    }

    case Expr::Kind::kRejoinRef:
    case Expr::Kind::kColumnName:
    case Expr::Kind::kScalarSubquery:
      return Status::Internal("unresolved leaf in typed expression");

    case Expr::Kind::kUnary: {
      SUMTAB_ASSIGN_OR_RETURN(ColumnInfo c, ExprInfo(e->children[0], box, graph));
      if (e->unary_op == expr::UnaryOp::kNot) c.type = Type::kBool;
      return c;
    }

    case Expr::Kind::kBinary: {
      SUMTAB_ASSIGN_OR_RETURN(ColumnInfo l, ExprInfo(e->children[0], box, graph));
      SUMTAB_ASSIGN_OR_RETURN(ColumnInfo r, ExprInfo(e->children[1], box, graph));
      ColumnInfo info;
      info.nullable = l.nullable || r.nullable;
      switch (e->binary_op) {
        case expr::BinaryOp::kAdd:
        case expr::BinaryOp::kSub:
        case expr::BinaryOp::kMul:
          info.type = (l.type == Type::kInt && r.type == Type::kInt)
                          ? Type::kInt
                          : Type::kDouble;
          break;
        case expr::BinaryOp::kDiv:
          info.type = Type::kDouble;
          info.nullable = true;  // division by zero yields NULL
          break;
        case expr::BinaryOp::kMod:
          info.type = Type::kInt;
          info.nullable = true;
          break;
        default:
          info.type = Type::kBool;
          break;
      }
      return info;
    }

    case Expr::Kind::kFunction: {
      // year/month/day are the built-ins.
      SUMTAB_ASSIGN_OR_RETURN(ColumnInfo c, ExprInfo(e->children[0], box, graph));
      c.type = Type::kInt;
      return c;
    }

    case Expr::Kind::kAggregate: {
      ColumnInfo info;
      switch (e->agg) {
        case expr::AggFunc::kCount:
          info.type = Type::kInt;
          info.nullable = false;
          return info;
        case expr::AggFunc::kAvg: {
          SUMTAB_ASSIGN_OR_RETURN(ColumnInfo c,
                                  ExprInfo(e->children[0], box, graph));
          info.type = Type::kDouble;
          info.nullable = c.nullable;
          return info;
        }
        case expr::AggFunc::kSum:
        case expr::AggFunc::kMin:
        case expr::AggFunc::kMax: {
          SUMTAB_ASSIGN_OR_RETURN(ColumnInfo c,
                                  ExprInfo(e->children[0], box, graph));
          return c;
        }
      }
      return Status::Internal("unhandled aggregate");
    }

    case Expr::Kind::kIsNull: {
      ColumnInfo info;
      info.type = Type::kBool;
      return info;
    }
  }
  return Status::Internal("unhandled expression kind");
}

Status ComputeBoxColumnInfo(Graph* graph, Box* box) {
  if (box->kind == Box::Kind::kBase) {
    return Status::Internal("ComputeBoxColumnInfo on a BASE box");
  }
  box->column_info.clear();
  for (size_t i = 0; i < box->outputs.size(); ++i) {
    SUMTAB_ASSIGN_OR_RETURN(ColumnInfo info,
                            ExprInfo(box->outputs[i].expr, *box, *graph));
    if (box->IsGroupBy() && box->IsGroupingOutput(static_cast<int>(i)) &&
        box->grouping_sets.size() >= 1) {
      // A grouping column is NULL in every cuboid that groups it out.
      bool in_every_set = true;
      for (const auto& set : box->grouping_sets) {
        bool found = false;
        for (int k : set) found = found || k == static_cast<int>(i);
        in_every_set = in_every_set && found;
      }
      if (!in_every_set) info.nullable = true;
    }
    box->column_info.push_back(info);
  }
  return Status::OK();
}

Status MergeSelectChains(Graph* graph) {
  // Count consumers: merging a shared child would duplicate computation.
  std::vector<int> consumers(graph->size(), 0);
  for (BoxId id : graph->TopologicalOrder()) {
    for (const Quantifier& q : graph->box(id)->quantifiers) {
      ++consumers[q.child];
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (BoxId id : graph->TopologicalOrder()) {
      Box* parent = graph->box(id);
      if (parent->kind != Box::Kind::kSelect) continue;
      for (size_t qi = 0; qi < parent->quantifiers.size(); ++qi) {
        const Quantifier& quant = parent->quantifiers[qi];
        if (quant.kind != Quantifier::Kind::kForeach) continue;
        Box* child = graph->box(quant.child);
        if (child->kind != Box::Kind::kSelect || child->distinct ||
            consumers[child->id] != 1) {
          continue;
        }
        // Splice child's quantifiers in place of quantifier qi.
        const int insert_at = static_cast<int>(qi);
        const int child_n = static_cast<int>(child->quantifiers.size());
        auto remap_parent = [insert_at, child_n](int q) {
          return q < insert_at ? q : q + child_n - 1;
        };
        // Child expressions move into the parent with shifted quantifiers.
        auto shift_child_expr = [insert_at](const expr::ExprPtr& e) {
          return expr::MapColumnRefs(e, [insert_at](int q, int c) {
            return expr::ColRef(q + insert_at, c);
          });
        };
        // Rewrite parent expressions: refs to the merged child inline its
        // output expressions; other refs shift.
        auto rewrite_parent_expr = [&](const expr::ExprPtr& e) {
          return expr::MapColumnRefs(e, [&](int q, int c) -> expr::ExprPtr {
            if (q == insert_at) {
              return shift_child_expr(child->outputs[c].expr);
            }
            return expr::ColRef(remap_parent(q), c);
          });
        };
        for (auto& out : parent->outputs) {
          out.expr = rewrite_parent_expr(out.expr);
        }
        std::vector<expr::ExprPtr> preds;
        for (const auto& p : parent->predicates) {
          preds.push_back(rewrite_parent_expr(p));
        }
        for (const auto& p : child->predicates) {
          preds.push_back(shift_child_expr(p));
        }
        parent->predicates = std::move(preds);
        std::vector<Quantifier> quants;
        for (size_t j = 0; j < parent->quantifiers.size(); ++j) {
          if (static_cast<int>(j) == insert_at) {
            for (const Quantifier& cq : child->quantifiers) {
              quants.push_back(cq);
            }
          } else {
            quants.push_back(parent->quantifiers[j]);
          }
        }
        parent->quantifiers = std::move(quants);
        consumers[child->id] = 0;  // orphaned
        changed = true;
        break;  // quantifier indexes changed; rescan this box
      }
    }
  }
  // Orphaned children must disappear: Parents() feeds the navigator, which
  // must never pair a query box with an unreachable (uninferred) AST box.
  graph->Compact();
  return Status::OK();
}

Status InferColumnInfo(Graph* graph, const catalog::Catalog& catalog) {
  for (BoxId id : graph->TopologicalOrder()) {
    Box* box = graph->box(id);
    if (box->kind == Box::Kind::kBase) {
      const catalog::Table* table = catalog.FindTable(box->table_name);
      if (table == nullptr) {
        // Subsumer-ref placeholders and advisor candidates carry preset
        // info that mirrors the defining query's output columns.
        if (box->column_info.size() == box->outputs.size() &&
            !box->outputs.empty()) {
          continue;
        }
        return Status::NotFound("table '" + box->table_name + "'");
      }
      box->column_info.clear();
      for (const catalog::Column& col : table->columns) {
        box->column_info.push_back(ColumnInfo{col.type, col.nullable});
      }
      continue;
    }
    SUMTAB_RETURN_NOT_OK(ComputeBoxColumnInfo(graph, box));
  }
  return Status::OK();
}

}  // namespace qgm
}  // namespace sumtab
