#include "qgm/qgm_print.h"

#include "common/str_util.h"
#include "expr/expr_print.h"

namespace sumtab {
namespace qgm {

namespace {

const char* KindName(Box::Kind kind) {
  switch (kind) {
    case Box::Kind::kBase:
      return "BASE";
    case Box::Kind::kSelect:
      return "SELECT";
    case Box::Kind::kGroupBy:
      return "GROUPBY";
  }
  return "?";
}

expr::RefPrinter NamedRefs(const Graph& graph, const Box& box) {
  return [&graph, &box](const expr::Expr& e) -> std::string {
    if (e.kind != expr::Expr::Kind::kColumnRef) return "";
    if (e.quantifier < 0 ||
        e.quantifier >= static_cast<int>(box.quantifiers.size())) {
      return "";
    }
    const Box* child = graph.box(box.quantifiers[e.quantifier].child);
    if (e.column < 0 || e.column >= child->NumOutputs()) return "";
    return "q" + std::to_string(e.quantifier) + "." +
           child->outputs[e.column].name;
  };
}

}  // namespace

std::string BoxToString(const Graph& graph, BoxId id) {
  const Box& box = *graph.box(id);
  std::string out = "box " + std::to_string(id) + " [" + KindName(box.kind);
  if (box.kind == Box::Kind::kBase) out += " " + box.table_name;
  if (box.distinct) out += " DISTINCT";
  out += "]\n";
  expr::RefPrinter refs = NamedRefs(graph, box);
  if (!box.quantifiers.empty()) {
    std::vector<std::string> qs;
    for (size_t i = 0; i < box.quantifiers.size(); ++i) {
      const Quantifier& q = box.quantifiers[i];
      qs.push_back("q" + std::to_string(i) +
                   (q.kind == Quantifier::Kind::kScalar ? "(scalar)->" : "->") +
                   std::to_string(q.child));
    }
    out += "  children: " + Join(qs, ", ") + "\n";
  }
  if (!box.predicates.empty()) {
    std::vector<std::string> ps;
    for (const auto& p : box.predicates) ps.push_back(expr::ToString(p, refs));
    out += "  predicates: " + Join(ps, " AND ") + "\n";
  }
  if (box.IsGroupBy()) {
    std::vector<std::string> sets;
    for (const auto& set : box.grouping_sets) {
      std::vector<std::string> cols;
      for (int k : set) cols.push_back(box.outputs[k].name);
      sets.push_back("(" + Join(cols, ", ") + ")");
    }
    out += "  grouping sets: " + Join(sets, ", ") + "\n";
  }
  if (box.kind != Box::Kind::kBase) {
    std::vector<std::string> outs;
    for (const auto& col : box.outputs) {
      outs.push_back(col.name + " := " + expr::ToString(col.expr, refs));
    }
    out += "  outputs: " + Join(outs, ", ") + "\n";
  } else {
    std::vector<std::string> outs;
    for (const auto& col : box.outputs) outs.push_back(col.name);
    out += "  columns: " + Join(outs, ", ") + "\n";
  }
  return out;
}

std::string ToString(const Graph& graph) {
  std::string out;
  for (BoxId id : graph.TopologicalOrder()) {
    out += BoxToString(graph, id);
  }
  out += "root: box " + std::to_string(graph.root()) + "\n";
  return out;
}

}  // namespace qgm
}  // namespace sumtab
