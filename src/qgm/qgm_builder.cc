#include "qgm/qgm_builder.h"

#include <set>

#include "common/str_util.h"
#include "expr/expr_rewrite.h"

namespace sumtab {
namespace qgm {

namespace {

using expr::Expr;
using expr::ExprPtr;

/// Name-resolution scope: one binding per quantifier of the SELECT box being
/// built. Scalar-subquery quantifiers get an empty alias (not addressable).
struct Binding {
  std::string alias;           // correlation name, lower case; may be empty
  std::vector<std::string> column_names;
};

class Builder {
 public:
  Builder(const catalog::Catalog& catalog, Graph* graph)
      : catalog_(catalog), graph_(graph) {}

  StatusOr<BoxId> BuildSelect(const sql::SelectStmt& stmt);

 private:
  StatusOr<BoxId> BuildFromRef(const sql::TableRef& ref);

  const catalog::Catalog& catalog_;
  Graph* graph_;
};

/// Per-block context used while resolving one SELECT statement.
struct BlockContext {
  Box* select_box = nullptr;
  std::vector<Binding> bindings;
};

StatusOr<BoxId> Builder::BuildFromRef(const sql::TableRef& ref) {
  if (ref.is_base()) {
    const catalog::Table* table = catalog_.FindTable(ref.table_name);
    if (table == nullptr) {
      return Status::NotFound("table '" + ref.table_name + "'");
    }
    Box* base = graph_->AddBox(Box::Kind::kBase);
    base->table_name = table->name;
    for (const catalog::Column& col : table->columns) {
      base->outputs.push_back(OutputColumn{col.name, nullptr});
    }
    return base->id;
  }
  return BuildSelect(*ref.subquery);
}

StatusOr<BoxId> Builder::BuildSelect(const sql::SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::NotSupported("SELECT without FROM");
  }
  Box* sel = graph_->AddBox(Box::Kind::kSelect);
  BlockContext ctx;
  ctx.select_box = sel;

  // FROM list -> quantifiers + name bindings.
  for (const sql::TableRef& ref : stmt.from) {
    SUMTAB_ASSIGN_OR_RETURN(BoxId child, BuildFromRef(ref));
    // AddBox during recursion may have reallocated nothing (unique_ptrs are
    // stable), but `sel` pointer remains valid because boxes are heap nodes.
    Quantifier q;
    q.child = child;
    sel->quantifiers.push_back(q);
    Binding binding;
    binding.alias =
        !ref.alias.empty()
            ? ToLower(ref.alias)
            : (ref.is_base() ? ToLower(ref.table_name) : std::string());
    for (const OutputColumn& out : graph_->box(child)->outputs) {
      binding.column_names.push_back(out.name);
    }
    ctx.bindings.push_back(std::move(binding));
  }

  // Duplicate alias check (ignoring anonymous derived tables).
  {
    std::set<std::string> seen;
    for (const Binding& b : ctx.bindings) {
      if (b.alias.empty()) continue;
      if (!seen.insert(b.alias).second) {
        return Status::InvalidArgument("duplicate table alias '" + b.alias +
                                       "'");
      }
    }
  }

  // Resolves column names (scalar subqueries are attached separately — in a
  // grouped block they belong to the *top* SELECT box, as in the paper's
  // Fig. 11 where the subquery is a child of Sel-3Q).
  std::function<StatusOr<ExprPtr>(const ExprPtr&)> resolve =
      [&](const ExprPtr& e) -> StatusOr<ExprPtr> {
    Status failure = Status::OK();
    ExprPtr resolved = expr::RewriteLeaves(e, [&](const ExprPtr& leaf) -> ExprPtr {
      if (!failure.ok()) return nullptr;
      if (leaf->kind == Expr::Kind::kColumnName) {
        int found_q = -1;
        int found_c = -1;
        for (size_t qi = 0; qi < ctx.bindings.size(); ++qi) {
          const Binding& b = ctx.bindings[qi];
          if (!leaf->qualifier.empty() && b.alias != ToLower(leaf->qualifier)) {
            continue;
          }
          for (size_t ci = 0; ci < b.column_names.size(); ++ci) {
            if (b.column_names[ci] == ToLower(leaf->name)) {
              if (found_q >= 0) {
                failure = Status::InvalidArgument("ambiguous column '" +
                                                  leaf->name + "'");
                return nullptr;
              }
              found_q = static_cast<int>(qi);
              found_c = static_cast<int>(ci);
            }
          }
        }
        if (found_q < 0) {
          failure = Status::NotFound("column '" +
                                     (leaf->qualifier.empty()
                                          ? leaf->name
                                          : leaf->qualifier + "." + leaf->name) +
                                     "'");
          return nullptr;
        }
        return expr::ColRef(found_q, found_c);
      }
      return nullptr;
    });
    if (!failure.ok()) return failure;
    return resolved;
  };

  // Converts the scalar subqueries inside `e` into scalar quantifiers of
  // `target` (which may be the join box or, for grouped blocks, the top box).
  std::function<StatusOr<ExprPtr>(const ExprPtr&, Box*)> attach_subqueries =
      [&](const ExprPtr& e, Box* target) -> StatusOr<ExprPtr> {
    if (e == nullptr) return e;
    Status failure = Status::OK();
    ExprPtr out = expr::RewriteLeaves(e, [&](const ExprPtr& leaf) -> ExprPtr {
      if (!failure.ok()) return nullptr;
      if (leaf->kind != Expr::Kind::kScalarSubquery) return nullptr;
      StatusOr<BoxId> sub = BuildSelect(*leaf->subquery);
      if (!sub.ok()) {
        failure = sub.status();
        return nullptr;
      }
      const Box* sub_box = graph_->box(*sub);
      if (sub_box->NumOutputs() != 1) {
        failure = Status::InvalidArgument(
            "scalar subquery must produce exactly one column");
        return nullptr;
      }
      Quantifier q;
      q.child = *sub;
      q.kind = Quantifier::Kind::kScalar;
      target->quantifiers.push_back(q);
      if (target == sel) ctx.bindings.push_back(Binding{});
      return expr::ColRef(static_cast<int>(target->quantifiers.size()) - 1, 0);
    });
    if (!failure.ok()) return failure;
    return out;
  };

  // WHERE.
  if (stmt.where != nullptr) {
    SUMTAB_ASSIGN_OR_RETURN(ExprPtr where, resolve(stmt.where));
    SUMTAB_ASSIGN_OR_RETURN(where, attach_subqueries(where, sel));
    if (expr::ContainsAggregate(where)) {
      return Status::InvalidArgument("aggregate not allowed in WHERE");
    }
    expr::SplitConjuncts(where, &sel->predicates);
  }

  // Resolve select list and having.
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> select_names;
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    SUMTAB_ASSIGN_OR_RETURN(ExprPtr e, resolve(stmt.select_list[i].expr));
    select_exprs.push_back(std::move(e));
    select_names.push_back(ToLower(sql::SelectItemName(stmt, i)));
  }
  ExprPtr having;
  if (stmt.having != nullptr) {
    SUMTAB_ASSIGN_OR_RETURN(having, resolve(stmt.having));
  }

  bool has_aggregates = having != nullptr || stmt.group_by.has_value();
  for (const ExprPtr& e : select_exprs) {
    has_aggregates = has_aggregates || expr::ContainsAggregate(e);
  }

  // Lower AVG(x) to SUM(x)/COUNT(x): GROUP-BY boxes then carry only
  // re-aggregatable functions, which the matching derivation rules
  // (Sec. 4.1.2 (a)-(g)) require. AVG(DISTINCT x) lowers likewise.
  std::function<ExprPtr(const ExprPtr&)> lower_avg =
      [&lower_avg](const ExprPtr& e) -> ExprPtr {
    if (e == nullptr) return nullptr;
    if (e->kind == Expr::Kind::kAggregate && e->agg == expr::AggFunc::kAvg) {
      ExprPtr arg = lower_avg(e->children[0]);
      return expr::Binary(
          expr::BinaryOp::kDiv,
          expr::Aggregate(expr::AggFunc::kSum, arg, e->agg_distinct),
          expr::Aggregate(expr::AggFunc::kCount, arg, e->agg_distinct));
    }
    bool changed = false;
    std::vector<ExprPtr> children;
    children.reserve(e->children.size());
    for (const ExprPtr& child : e->children) {
      ExprPtr c = lower_avg(child);
      changed = changed || c != child;
      children.push_back(std::move(c));
    }
    if (!changed) return e;
    auto node = std::make_shared<Expr>(*e);
    node->children = std::move(children);
    return node;
  };
  for (ExprPtr& e : select_exprs) e = lower_avg(e);
  having = lower_avg(having);

  BoxId result_box;
  if (!has_aggregates) {
    // Plain select-project-join block.
    for (size_t i = 0; i < select_exprs.size(); ++i) {
      SUMTAB_ASSIGN_OR_RETURN(ExprPtr attached,
                              attach_subqueries(select_exprs[i], sel));
      sel->outputs.push_back(OutputColumn{select_names[i], attached});
    }
    sel->distinct = stmt.distinct;
    result_box = sel->id;
  } else {
    // Grouped block: SELECT -> GROUPBY -> SELECT stack.
    std::vector<ExprPtr> grouping_exprs;
    std::vector<std::vector<int>> grouping_sets;
    if (stmt.group_by.has_value()) {
      for (const ExprPtr& item : stmt.group_by->items) {
        SUMTAB_ASSIGN_OR_RETURN(ExprPtr g, resolve(item));
        SUMTAB_ASSIGN_OR_RETURN(g, attach_subqueries(g, sel));
        if (expr::ContainsAggregate(g)) {
          return Status::InvalidArgument("aggregate in GROUP BY");
        }
        grouping_exprs.push_back(std::move(g));
      }
      grouping_sets = stmt.group_by->sets;
    } else {
      grouping_sets = {{}};  // scalar aggregation: one global group
    }

    // Collect the distinct aggregates appearing in SELECT/HAVING.
    std::vector<ExprPtr> aggregates;
    auto collect_aggs = [&aggregates](const ExprPtr& e) {
      std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& node) {
        if (node == nullptr) return;
        if (node->kind == Expr::Kind::kAggregate) {
          for (const ExprPtr& existing : aggregates) {
            if (expr::Equal(existing, node)) return;
          }
          aggregates.push_back(node);
          return;  // aggregates do not nest
        }
        for (const ExprPtr& child : node->children) walk(child);
      };
      walk(e);
    };
    for (const ExprPtr& e : select_exprs) collect_aggs(e);
    collect_aggs(having);

    // Lower SELECT outputs: grouping expressions, then aggregate arguments.
    auto lower_output_index = [&sel](const ExprPtr& e,
                                     const std::string& name) -> int {
      for (size_t i = 0; i < sel->outputs.size(); ++i) {
        if (expr::Equal(sel->outputs[i].expr, e)) return static_cast<int>(i);
      }
      sel->outputs.push_back(OutputColumn{name, e});
      return static_cast<int>(sel->outputs.size()) - 1;
    };
    std::vector<int> grouping_cols;  // index into sel->outputs
    for (size_t i = 0; i < grouping_exprs.size(); ++i) {
      // Prefer a select-list alias when the grouping expression is also a
      // (bare) select item, for readable rewritten SQL.
      std::string name = "g" + std::to_string(i);
      for (size_t s = 0; s < select_exprs.size(); ++s) {
        if (expr::Equal(select_exprs[s], grouping_exprs[i])) {
          name = select_names[s];
          break;
        }
      }
      grouping_cols.push_back(lower_output_index(grouping_exprs[i], name));
    }
    struct LoweredAgg {
      expr::AggFunc func;
      bool distinct;
      bool star;
      int arg;  // sel output index; -1 for COUNT(*)
    };
    std::vector<LoweredAgg> lowered;
    for (size_t i = 0; i < aggregates.size(); ++i) {
      const ExprPtr& agg = aggregates[i];
      LoweredAgg la{agg->agg, agg->agg_distinct, agg->agg_star, -1};
      if (!agg->agg_star) {
        SUMTAB_ASSIGN_OR_RETURN(ExprPtr arg,
                                attach_subqueries(agg->children[0], sel));
        la.arg = lower_output_index(arg, "a" + std::to_string(i));
      }
      lowered.push_back(la);
    }

    // GROUPBY box.
    Box* gb = graph_->AddBox(Box::Kind::kGroupBy);
    gb->quantifiers.push_back(Quantifier{sel->id, Quantifier::Kind::kForeach});
    for (size_t i = 0; i < grouping_cols.size(); ++i) {
      gb->outputs.push_back(OutputColumn{
          sel->outputs[grouping_cols[i]].name,
          expr::ColRef(0, grouping_cols[i])});
    }
    gb->grouping_sets = std::move(grouping_sets);
    std::vector<int> agg_out;  // gb output index per collected aggregate
    for (size_t i = 0; i < lowered.size(); ++i) {
      const LoweredAgg& la = lowered[i];
      ExprPtr agg_expr =
          la.star ? expr::CountStar()
                  : expr::Aggregate(la.func, expr::ColRef(0, la.arg),
                                    la.distinct);
      std::string name = "agg" + std::to_string(i);
      for (size_t s = 0; s < select_exprs.size(); ++s) {
        if (expr::Equal(select_exprs[s], aggregates[i]) &&
            !select_names[s].empty()) {
          name = select_names[s];
          break;
        }
      }
      gb->outputs.push_back(OutputColumn{name, std::move(agg_expr)});
      agg_out.push_back(gb->NumOutputs() - 1);
    }

    // Top SELECT: HAVING + final expressions, in terms of GB outputs.
    Box* top = graph_->AddBox(Box::Kind::kSelect);
    top->quantifiers.push_back(
        Quantifier{gb->id, Quantifier::Kind::kForeach});
    top->distinct = stmt.distinct;

    // Rewrites a resolved block expression into the top box's context:
    // aggregate subtrees -> refs to GB aggregate outputs; grouping-expression
    // subtrees -> refs to GB grouping outputs.
    std::function<StatusOr<ExprPtr>(const ExprPtr&)> to_top =
        [&](const ExprPtr& e) -> StatusOr<ExprPtr> {
      if (e->kind == Expr::Kind::kAggregate) {
        for (size_t i = 0; i < aggregates.size(); ++i) {
          if (expr::Equal(aggregates[i], e)) {
            return expr::ColRef(0, agg_out[i]);
          }
        }
        return Status::Internal("aggregate not collected");
      }
      for (size_t i = 0; i < grouping_exprs.size(); ++i) {
        if (expr::Equal(grouping_exprs[i], e)) {
          return expr::ColRef(0, static_cast<int>(i));
        }
      }
      if (e->kind == Expr::Kind::kColumnRef) {
        return Status::InvalidArgument(
            "column is neither grouped nor aggregated");
      }
      if (e->children.empty()) return e;
      bool changed = false;
      std::vector<ExprPtr> children;
      for (const ExprPtr& child : e->children) {
        SUMTAB_ASSIGN_OR_RETURN(ExprPtr c, to_top(child));
        changed = changed || c != child;
        children.push_back(std::move(c));
      }
      if (!changed) return e;
      auto node = std::make_shared<Expr>(*e);
      node->children = std::move(children);
      return ExprPtr(node);
    };

    for (size_t i = 0; i < select_exprs.size(); ++i) {
      SUMTAB_ASSIGN_OR_RETURN(ExprPtr e, to_top(select_exprs[i]));
      SUMTAB_ASSIGN_OR_RETURN(e, attach_subqueries(e, top));
      top->outputs.push_back(OutputColumn{select_names[i], std::move(e)});
    }
    if (having != nullptr) {
      SUMTAB_ASSIGN_OR_RETURN(ExprPtr h, to_top(having));
      SUMTAB_ASSIGN_OR_RETURN(h, attach_subqueries(h, top));
      expr::SplitConjuncts(h, &top->predicates);
    }
    result_box = top->id;
  }

  return result_box;
}

}  // namespace

StatusOr<Graph> BuildGraph(const sql::SelectStmt& stmt,
                           const catalog::Catalog& catalog) {
  Graph graph;
  Builder builder(catalog, &graph);
  SUMTAB_ASSIGN_OR_RETURN(BoxId root, builder.BuildSelect(stmt));
  graph.set_root(root);

  // ORDER BY: resolve against root output names or 1-based positions.
  std::vector<OrderSpec> order;
  const Box* root_box = graph.box(root);
  for (const sql::OrderItem& item : stmt.order_by) {
    OrderSpec spec;
    spec.ascending = item.ascending;
    if (item.expr->kind == expr::Expr::Kind::kColumnName &&
        item.expr->qualifier.empty()) {
      int idx = root_box->OutputIndex(ToLower(item.expr->name));
      if (idx < 0) {
        return Status::NotFound("ORDER BY column '" + item.expr->name + "'");
      }
      spec.output_index = idx;
    } else if (item.expr->kind == expr::Expr::Kind::kLiteral &&
               item.expr->literal.kind() == Value::Kind::kInt) {
      int pos = static_cast<int>(item.expr->literal.AsInt());
      if (pos < 1 || pos > root_box->NumOutputs()) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      spec.output_index = pos - 1;
    } else {
      return Status::NotSupported(
          "ORDER BY supports output names and positions only");
    }
    order.push_back(spec);
  }
  graph.set_order_by(std::move(order));

  SUMTAB_RETURN_NOT_OK(MergeSelectChains(&graph));
  SUMTAB_RETURN_NOT_OK(InferColumnInfo(&graph, catalog));
  return graph;
}

}  // namespace qgm
}  // namespace sumtab
