// Emits SQL (in this library's own dialect, re-parseable by sql::Parse) from
// a QGM graph. Used to display rewritten queries (the paper's NewQ1, NewQ2,
// ...) and for round-trip testing.
#ifndef SUMTAB_QGM_QGM_TO_SQL_H_
#define SUMTAB_QGM_QGM_TO_SQL_H_

#include <string>

#include "common/status.h"
#include "qgm/qgm.h"

namespace sumtab {
namespace qgm {

StatusOr<std::string> ToSql(const Graph& graph);

}  // namespace qgm
}  // namespace sumtab

#endif  // SUMTAB_QGM_QGM_TO_SQL_H_
