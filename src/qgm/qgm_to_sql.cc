#include "qgm/qgm_to_sql.h"

#include <functional>

#include "common/str_util.h"
#include "expr/expr_print.h"

namespace sumtab {
namespace qgm {

namespace {

class SqlEmitter {
 public:
  explicit SqlEmitter(const Graph& graph) : graph_(graph) {}

  StatusOr<std::string> Emit(BoxId id) {
    const Box& box = *graph_.box(id);
    switch (box.kind) {
      case Box::Kind::kBase:
        return "select " + ColumnList(box) + " from " + box.table_name;
      case Box::Kind::kSelect:
        return EmitSelect(box);
      case Box::Kind::kGroupBy:
        return EmitGroupBy(box);
    }
    return Status::Internal("unknown box kind");
  }

  /// FROM-clause item for a child: bare table name for BASE, otherwise a
  /// parenthesized derived table.
  StatusOr<std::string> EmitFromItem(BoxId child, const std::string& alias) {
    const Box& box = *graph_.box(child);
    if (box.kind == Box::Kind::kBase) {
      return box.table_name + " " + alias;
    }
    SUMTAB_ASSIGN_OR_RETURN(std::string inner, Emit(child));
    return "(" + inner + ") " + alias;
  }

 private:
  static std::string ColumnList(const Box& base) {
    std::vector<std::string> cols;
    for (const auto& out : base.outputs) cols.push_back(out.name);
    return Join(cols, ", ");
  }

  /// Reference printer for expressions inside `box`: foreach quantifiers
  /// print as q<N>.<column name>; scalar quantifiers inline their subquery.
  expr::RefPrinter MakeRefs(const Box& box, Status* failure) {
    return [this, &box, failure](const expr::Expr& e) -> std::string {
      if (e.kind != expr::Expr::Kind::kColumnRef) return "";
      const Quantifier& q = box.quantifiers[e.quantifier];
      if (q.kind == Quantifier::Kind::kScalar) {
        StatusOr<std::string> sub = Emit(q.child);
        if (!sub.ok()) {
          *failure = sub.status();
          return "<error>";
        }
        return "(" + *sub + ")";
      }
      const Box* child = graph_.box(q.child);
      return "q" + std::to_string(e.quantifier) + "." +
             child->outputs[e.column].name;
    };
  }

  StatusOr<std::string> EmitSelect(const Box& box) {
    Status failure = Status::OK();
    expr::RefPrinter refs = MakeRefs(box, &failure);
    std::vector<std::string> items;
    for (const auto& out : box.outputs) {
      items.push_back(expr::ToString(out.expr, refs) + " as " + out.name);
    }
    std::vector<std::string> from;
    for (size_t i = 0; i < box.quantifiers.size(); ++i) {
      const Quantifier& q = box.quantifiers[i];
      if (q.kind == Quantifier::Kind::kScalar) continue;
      SUMTAB_ASSIGN_OR_RETURN(
          std::string item, EmitFromItem(q.child, "q" + std::to_string(i)));
      from.push_back(std::move(item));
    }
    std::string sql = std::string("select ") + (box.distinct ? "distinct " : "") +
                      Join(items, ", ") + " from " + Join(from, ", ");
    if (!box.predicates.empty()) {
      // Print as one conjunction so OR-predicates parenthesize correctly.
      sql += " where " +
             expr::ToString(expr::MakeConjunction(box.predicates), refs);
    }
    if (!failure.ok()) return failure;
    return sql;
  }

  StatusOr<std::string> EmitGroupBy(const Box& box) {
    Status failure = Status::OK();
    expr::RefPrinter refs = MakeRefs(box, &failure);
    std::vector<std::string> items;
    std::vector<std::string> text_by_output(box.NumOutputs());
    for (int i = 0; i < box.NumOutputs(); ++i) {
      const auto& out = box.outputs[i];
      text_by_output[i] = expr::ToString(out.expr, refs);
      items.push_back(text_by_output[i] + " as " + out.name);
    }
    SUMTAB_ASSIGN_OR_RETURN(std::string from,
                            EmitFromItem(box.quantifiers[0].child, "q0"));
    std::string sql = "select " + Join(items, ", ") + " from " + from;
    if (box.NumGroupingOutputs() > 0 || !box.IsSimpleGroupBy()) {
      sql += " group by ";
      if (box.IsSimpleGroupBy()) {
        std::vector<std::string> cols;
        for (int k : box.grouping_sets[0]) cols.push_back(text_by_output[k]);
        sql += Join(cols, ", ");
      } else {
        std::vector<std::string> sets;
        for (const auto& set : box.grouping_sets) {
          std::vector<std::string> cols;
          for (int k : set) cols.push_back(text_by_output[k]);
          sets.push_back("(" + Join(cols, ", ") + ")");
        }
        sql += "grouping sets (" + Join(sets, ", ") + ")";
      }
    }
    if (!failure.ok()) return failure;
    return sql;
  }

  const Graph& graph_;
};

}  // namespace

StatusOr<std::string> ToSql(const Graph& graph) {
  SqlEmitter emitter(graph);
  SUMTAB_ASSIGN_OR_RETURN(std::string sql, emitter.Emit(graph.root()));
  const Box* root = graph.box(graph.root());
  if (!graph.order_by().empty()) {
    std::vector<std::string> items;
    for (const OrderSpec& spec : graph.order_by()) {
      items.push_back(root->outputs[spec.output_index].name +
                      (spec.ascending ? "" : " desc"));
    }
    sql += " order by " + Join(items, ", ");
  }
  return sql;
}

}  // namespace qgm
}  // namespace sumtab
