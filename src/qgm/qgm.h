// The Query Graph Model (paper Sec. 2). A query is a rooted DAG of boxes:
//  - BASE boxes are base-table leaves,
//  - SELECT boxes perform select-project-join (WHERE/HAVING predicates and
//    all scalar computation),
//  - GROUPBY boxes group and compute aggregate functions; their grouping
//    predicates are simple input columns (QNCs) or grouping sets thereof.
//
// Input columns (QNCs) are referenced from expressions as
// expr::ColRef(quantifier_index, column_index_within_child_outputs).
// Output columns (QCLs) are the box's `outputs`.
//
// A GROUPBY box's outputs are its grouping columns first (simple column
// refs, in grouping-item order) followed by its aggregate QCLs (aggregate
// functions over simple input columns). `grouping_sets` holds the canonical
// gs(GS1..GSk) form over grouping-output indexes; a simple GROUP BY has one
// set containing all of them (Sec. 5).
#ifndef SUMTAB_QGM_QGM_H_
#define SUMTAB_QGM_QGM_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"
#include "expr/expr.h"

namespace sumtab {
namespace qgm {

using BoxId = int;
constexpr BoxId kInvalidBox = -1;

/// Edge from a box to one child (producer). Scalar quantifiers carry the
/// single row of an uncorrelated scalar subquery (0 rows -> NULL row).
struct Quantifier {
  enum class Kind { kForeach, kScalar };
  BoxId child = kInvalidBox;
  Kind kind = Kind::kForeach;
};

/// One QCL. For BASE boxes expr is null (the column is the stored column at
/// the same index); otherwise expr is over the box's QNCs.
struct OutputColumn {
  std::string name;
  expr::ExprPtr expr;
};

/// Static type/nullability of one output column (filled by InferColumnInfo).
struct ColumnInfo {
  Type type = Type::kInt;
  bool nullable = false;
};

struct Box {
  enum class Kind { kBase, kSelect, kGroupBy };

  BoxId id = kInvalidBox;
  Kind kind = Kind::kSelect;

  // kBase only.
  std::string table_name;

  std::vector<Quantifier> quantifiers;

  // kSelect only: conjunctive predicates (WHERE or HAVING).
  std::vector<expr::ExprPtr> predicates;
  // kSelect only: duplicate elimination.
  bool distinct = false;

  std::vector<OutputColumn> outputs;

  // kGroupBy only: canonical grouping sets over *output indexes* of grouping
  // outputs. A simple GROUP BY has exactly one set listing every grouping
  // output; scalar aggregation has one empty set. Grouping outputs are the
  // non-aggregate outputs (simple input-column refs); they usually precede
  // the aggregates but compensation boxes may append more.
  std::vector<std::vector<int>> grouping_sets;

  // Cached analysis results (InferColumnInfo).
  std::vector<ColumnInfo> column_info;

  bool IsGroupBy() const { return kind == Kind::kGroupBy; }
  bool IsSimpleGroupBy() const {
    return IsGroupBy() && grouping_sets.size() == 1 &&
           static_cast<int>(grouping_sets[0].size()) == NumGroupingOutputs();
  }
  int NumOutputs() const { return static_cast<int>(outputs.size()); }

  /// For GROUPBY boxes: true if output index i is a grouping column.
  bool IsGroupingOutput(int i) const {
    return IsGroupBy() && outputs[i].expr != nullptr &&
           outputs[i].expr->kind != expr::Expr::Kind::kAggregate;
  }

  int NumGroupingOutputs() const {
    int n = 0;
    for (int i = 0; i < NumOutputs(); ++i) n += IsGroupingOutput(i) ? 1 : 0;
    return n;
  }

  /// Output indexes of all grouping outputs, in output order.
  std::vector<int> GroupingOutputs() const {
    std::vector<int> out;
    for (int i = 0; i < NumOutputs(); ++i) {
      if (IsGroupingOutput(i)) out.push_back(i);
    }
    return out;
  }

  /// Index of the output named `name` (case-sensitive; names are stored
  /// lower-case), or -1.
  int OutputIndex(const std::string& name) const;
};

/// Result ordering requested at the top level (ORDER BY); carried on the
/// graph because QGM boxes model semantics, not presentation.
struct OrderSpec {
  int output_index = 0;
  bool ascending = true;
};

class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  Box* AddBox(Box::Kind kind);
  Box* box(BoxId id) { return boxes_[id].get(); }
  const Box* box(BoxId id) const { return boxes_[id].get(); }
  int size() const { return static_cast<int>(boxes_.size()); }

  BoxId root() const { return root_; }
  void set_root(BoxId id) { root_ = id; }

  const std::vector<OrderSpec>& order_by() const { return order_by_; }
  void set_order_by(std::vector<OrderSpec> spec) {
    order_by_ = std::move(spec);
  }

  /// Boxes that consume `id` via a quantifier.
  std::vector<BoxId> Parents(BoxId id) const;

  /// Children-before-parents order over boxes reachable from root.
  std::vector<BoxId> TopologicalOrder() const;

  /// Max distance to a leaf (BASE boxes have rank 0).
  int Rank(BoxId id) const;

  /// Deep-copies the subgraph rooted at src_root (from graph src, which may
  /// be *this) into this graph; returns the new root's id.
  BoxId CloneSubgraph(const Graph& src, BoxId src_root);

  /// Deep-copies an entire graph including root and order-by.
  static Graph CloneGraph(const Graph& src);

  /// Removes boxes unreachable from the root and renumbers ids (used after
  /// normalization; Parents() must never surface orphaned boxes).
  void Compact();

 private:
  std::vector<std::unique_ptr<Box>> boxes_;
  BoxId root_ = kInvalidBox;
  std::vector<OrderSpec> order_by_;
};

/// Computes column_info for every box reachable from the root, bottom-up.
/// BASE boxes take their info from the catalog (summary tables included).
Status InferColumnInfo(Graph* graph, const catalog::Catalog& catalog);

/// Computes column_info for one non-BASE box whose children already carry
/// info (used for compensation boxes assembled by the matcher).
Status ComputeBoxColumnInfo(Graph* graph, Box* box);

/// QGM normalization (paper footnote 6: consecutive SELECT boxes can almost
/// always be merged): inlines every non-DISTINCT SELECT child with a single
/// consumer into its SELECT parent, splicing quantifiers and predicates.
/// Derived tables then match as if written in one block.
Status MergeSelectChains(Graph* graph);

/// Type/nullability of an expression evaluated inside `box` (whose children
/// must already carry column_info).
StatusOr<ColumnInfo> ExprInfo(const expr::ExprPtr& e, const Box& box,
                              const Graph& graph);

}  // namespace qgm
}  // namespace sumtab

#endif  // SUMTAB_QGM_QGM_H_
