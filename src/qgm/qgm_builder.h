// Builds a QGM graph from a parsed SELECT statement (paper Sec. 2, Fig. 3).
// A grouped query block becomes the three-box stack the paper uses:
//   SELECT (join + WHERE + grouping/aggregate-argument expressions)
//   -> GROUPBY (grouping columns + aggregate functions over simple QNCs)
//   -> SELECT (HAVING predicates + final select-list expressions).
// Scalar subqueries become scalar quantifiers of the enclosing SELECT box.
#ifndef SUMTAB_QGM_QGM_BUILDER_H_
#define SUMTAB_QGM_QGM_BUILDER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "qgm/qgm.h"
#include "sql/sql_ast.h"

namespace sumtab {
namespace qgm {

/// Builds the graph and runs InferColumnInfo on it.
StatusOr<Graph> BuildGraph(const sql::SelectStmt& stmt,
                           const catalog::Catalog& catalog);

}  // namespace qgm
}  // namespace sumtab

#endif  // SUMTAB_QGM_QGM_BUILDER_H_
