// Workload advisor: which summary tables should exist? (The paper's related
// problem (a), citing Harinarayan/Rajaraman/Ullman, "Implementing Data Cubes
// Efficiently".)
//
// Candidates are generated from the workload's own aggregate blocks (each
// query's SELECT->GROUPBY stack over base tables, augmented with COUNT(*) so
// coarser queries can re-aggregate). Sizes are estimated by counting the
// candidate's groups; benefits are computed with the *real* matcher: a
// candidate benefits a query iff RewriteQuery fires, and the saving is the
// reduction in scanned leaf rows. A greedy loop then picks candidates with
// the best marginal-benefit-per-row under a total-row budget.
#ifndef SUMTAB_ADVISOR_ADVISOR_H_
#define SUMTAB_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sumtab/database.h"

namespace sumtab {
namespace advisor {

struct Candidate {
  std::string sql;              // candidate summary-table definition
  int64_t estimated_rows = 0;   // number of groups it would materialize
  /// Workload indexes this candidate can answer (matcher-verified).
  std::vector<int> covered_queries;
  /// Total leaf rows saved per one run of the whole workload, when this
  /// candidate is used alone.
  int64_t standalone_benefit = 0;
  bool chosen = false;
};

struct Recommendation {
  std::vector<Candidate> candidates;  // all generated, chosen ones flagged
  int64_t budget_rows = 0;
  int64_t total_rows_used = 0;
  int64_t workload_cost_before = 0;  // leaf rows per workload run, no ASTs
  int64_t workload_cost_after = 0;   // with the chosen set
};

/// Analyzes `workload` against the database's schema and data statistics.
/// The database is only read (candidate sizes are estimated with COUNT
/// queries); nothing is materialized.
StatusOr<Recommendation> RecommendSummaryTables(
    Database* db, const std::vector<std::string>& workload,
    int64_t budget_rows);

/// Materializes the chosen candidates as summary tables named
/// `<prefix>0`, `<prefix>1`, ...; returns the created names.
StatusOr<std::vector<std::string>> ApplyRecommendation(
    Database* db, const Recommendation& recommendation,
    const std::string& prefix = "advisor_ast");

}  // namespace advisor
}  // namespace sumtab

#endif  // SUMTAB_ADVISOR_ADVISOR_H_
