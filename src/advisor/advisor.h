// Workload advisor: which summary tables should exist? (The paper's related
// problem (a), citing Harinarayan/Rajaraman/Ullman, "Implementing Data Cubes
// Efficiently".)
//
// Candidates are generated from the workload's own aggregate blocks (each
// query's SELECT->GROUPBY stack over base tables, augmented with COUNT(*) so
// coarser queries can re-aggregate), then widened two ways:
//   - cuboid-lattice ancestors of observed CUBE/ROLLUP/grouping-sets queries
//     (Gray et al.): the finest single-set cuboid plus each observed set,
//     so one materialization can answer the whole lattice by re-aggregation;
//   - merged blocks (multi-query optimization, cf. Roy et al.): two
//     candidates over the same tables and predicates are unioned into one
//     shared candidate carrying both grouping columns and both aggregate
//     sets.
// Sizes are estimated by counting the candidate's groups; benefits use the
// *real* matcher: a candidate benefits a query iff RewriteQuery fires, and
// the saving is the frequency-weighted reduction in scanned leaf rows. Each
// candidate is additionally charged an incremental-maintenance cost from the
// workload's observed append rates (appended rows when AnalyzeMergePlan says
// the candidate merges incrementally, batches x base rows when it would
// recompute). A greedy loop then picks candidates with the best net marginal
// benefit per materialized row under a total-row budget.
//
// AdviseAndApply closes the loop: it mines the database's own workload log,
// recommends under budget, CREATEs the chosen candidates as advisor-owned
// ASTs, and DROPs advisor-owned ASTs whose observed hit rate has decayed.
// Reachable through SQL as "tune [budget <rows>]".
#ifndef SUMTAB_ADVISOR_ADVISOR_H_
#define SUMTAB_ADVISOR_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sumtab/database.h"

namespace sumtab {
namespace advisor {

/// One workload query with its observed weight (execution frequency).
struct WorkloadQuery {
  std::string sql;
  int64_t weight = 1;
};

struct AdvisorOptions {
  /// Total materialized-row budget across chosen candidates. Negative
  /// derives a default: the total row count of the base tables (an AST set
  /// as large as the data is never worth more than that).
  int64_t budget_rows = -1;
  /// Scales the maintenance charge relative to scan savings (1.0 = a
  /// maintained row costs what a scanned row saves).
  double maintenance_weight = 1.0;
  /// Auto-DROP threshold: an advisor-owned AST whose rewrite hit rate
  /// (rewrite_hits / queries observed since creation) falls below this is
  /// dropped by AdviseAndApply...
  double min_hit_rate = 0.05;
  /// ...but only once at least this many queries have been observed since
  /// its creation — a fresh AST is not judged on a handful of queries.
  int64_t min_queries_before_drop = 20;
  /// Name prefix for created ASTs ("<prefix>0", "<prefix>1", ...,
  /// uniquified against the catalog).
  std::string name_prefix = "advisor_ast";
};

struct Candidate {
  std::string sql;              // candidate summary-table definition
  int64_t estimated_rows = 0;   // number of groups it would materialize
  /// Workload indexes this candidate can answer (matcher-verified).
  std::vector<int> covered_queries;
  /// Frequency-weighted leaf rows saved per workload window when this
  /// candidate is used alone.
  int64_t standalone_benefit = 0;
  /// Frequency-weighted maintenance charge per workload window, from the
  /// observed append rates: appended rows where the candidate merges
  /// incrementally, batches x its base rows where it would recompute.
  int64_t maintenance_cost = 0;
  /// True when every appended-to base table the candidate reads passes
  /// AnalyzeMergePlan (no observed appends counts as maintainable).
  bool maintainable = true;
  /// Provenance: "query" (one query's aggregate block), "cuboid" (lattice
  /// point derived from a grouping-sets query), or "merged" (union of two
  /// compatible blocks).
  std::string origin = "query";
  bool chosen = false;
};

struct Recommendation {
  std::vector<Candidate> candidates;  // all generated, chosen ones flagged
  int64_t budget_rows = 0;
  int64_t total_rows_used = 0;
  int64_t workload_cost_before = 0;  // weighted leaf rows, no ASTs
  int64_t workload_cost_after = 0;   // with the chosen set
  /// Total maintenance charge of the chosen set per workload window.
  int64_t maintenance_cost = 0;
};

/// Analyzes an explicit unweighted workload against the database's schema
/// and data statistics. The database is only read (candidate sizes are
/// estimated with COUNT queries); nothing is materialized. Deterministic for
/// a fixed workload, database state, and budget.
StatusOr<Recommendation> RecommendSummaryTables(
    Database* db, const std::vector<std::string>& workload,
    int64_t budget_rows);

/// Weighted form: the full candidate-generation + costing pipeline described
/// above. AdviseAndApply feeds it the observed workload log.
StatusOr<Recommendation> RecommendForWorkload(
    Database* db, const std::vector<WorkloadQuery>& workload,
    const AdvisorOptions& options);

/// Materializes the chosen candidates as advisor-owned summary tables named
/// `<prefix>0`, `<prefix>1`, ... — counters skip names the catalog already
/// holds. All-or-nothing: if any definition fails, every AST this call
/// already created is dropped before the error returns. Returns the created
/// names. Fault point: "advisor/apply" (after each successful define).
StatusOr<std::vector<std::string>> ApplyRecommendation(
    Database* db, const Recommendation& recommendation,
    const std::string& prefix = "advisor_ast");

/// One row of the TUNE action report.
struct TuneAction {
  std::string action;  // "create", "drop", or "summary"
  std::string name;
  int64_t rows = 0;
  std::string detail;
};

struct TuneOutcome {
  std::vector<std::string> created;
  std::vector<std::string> dropped;
  Recommendation recommendation;
  std::vector<TuneAction> actions;
};

/// The closed loop: drop advisor-owned ASTs whose hit rate decayed, mine the
/// database's workload log, recommend under `options.budget_rows`, and
/// create the chosen candidates (skipping any whose normalized definition
/// already exists as an AST). Deterministic for a fixed workload log,
/// database state, and options.
StatusOr<TuneOutcome> AdviseAndApply(Database* db,
                                     const AdvisorOptions& options);

}  // namespace advisor
}  // namespace sumtab

#endif  // SUMTAB_ADVISOR_ADVISOR_H_
