#include "advisor/advisor.h"

#include <algorithm>
#include <set>

#include "matching/rewriter.h"
#include "qgm/qgm_builder.h"
#include "qgm/qgm_to_sql.h"
#include "sql/parser.h"

namespace sumtab {
namespace advisor {

namespace {

/// Leaf-scan cost of a graph: total rows of all scanned base tables, with
/// `candidate_name` costed at `candidate_rows` (it is not materialized yet).
int64_t LeafCost(const qgm::Graph& graph, const Database& db,
                 const std::string& candidate_name, int64_t candidate_rows) {
  int64_t cost = 0;
  for (int id = 0; id < graph.size(); ++id) {
    const qgm::Box* box = graph.box(id);
    if (box->kind != qgm::Box::Kind::kBase) continue;
    cost += box->table_name == candidate_name ? candidate_rows
                                              : db.TableRows(box->table_name);
  }
  return cost;
}

/// Extracts candidate definitions from one query graph: for every GROUP-BY
/// box whose block sits directly over base tables, emit the subgraph rooted
/// at that GROUP-BY as SQL, with a COUNT(*) ensured so that coarser queries
/// can re-aggregate (rule (a) needs a row count).
Status ExtractCandidates(const qgm::Graph& graph,
                         std::vector<std::string>* out) {
  for (qgm::BoxId id : graph.TopologicalOrder()) {
    const qgm::Box* gb = graph.box(id);
    if (!gb->IsGroupBy()) continue;
    const qgm::Box* lower = graph.box(gb->quantifiers[0].child);
    if (lower->kind != qgm::Box::Kind::kSelect) continue;
    bool over_base = true;
    for (const qgm::Quantifier& q : lower->quantifiers) {
      over_base = over_base &&
                  graph.box(q.child)->kind == qgm::Box::Kind::kBase &&
                  q.kind == qgm::Quantifier::Kind::kForeach;
    }
    if (!over_base) continue;

    // Clone the GROUP-BY subgraph into a standalone graph, add COUNT(*).
    qgm::Graph candidate;
    qgm::BoxId root = candidate.CloneSubgraph(graph, id);
    qgm::Box* root_box = candidate.box(root);
    bool has_count_star = false;
    for (const auto& col : root_box->outputs) {
      has_count_star = has_count_star ||
                       (col.expr->kind == expr::Expr::Kind::kAggregate &&
                        col.expr->agg_star);
    }
    if (!has_count_star) {
      root_box->outputs.push_back(
          qgm::OutputColumn{"advisor_cnt", expr::CountStar()});
    }
    candidate.set_root(root);
    SUMTAB_ASSIGN_OR_RETURN(std::string sql, qgm::ToSql(candidate));
    out->push_back(std::move(sql));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Recommendation> RecommendSummaryTables(
    Database* db, const std::vector<std::string>& workload,
    int64_t budget_rows) {
  Recommendation rec;
  rec.budget_rows = budget_rows;

  // Parse the workload once.
  std::vector<qgm::Graph> query_graphs;
  for (const std::string& sql : workload) {
    SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                            sql::Parse(sql));
    SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph,
                            qgm::BuildGraph(*stmt, db->catalog()));
    query_graphs.push_back(std::move(graph));
  }

  // Candidate generation + dedup.
  std::vector<std::string> sqls;
  for (const qgm::Graph& graph : query_graphs) {
    SUMTAB_RETURN_NOT_OK(ExtractCandidates(graph, &sqls));
  }
  std::set<std::string> seen;
  std::vector<std::string> unique_sqls;
  for (std::string& sql : sqls) {
    if (seen.insert(sql).second) unique_sqls.push_back(std::move(sql));
  }

  // Size + benefit estimation per candidate. A temporary catalog entry named
  // `advisor_candidate` lets the rewriter produce a costable graph.
  QueryOptions direct;
  direct.enable_rewrite = false;
  std::vector<std::vector<int64_t>> cost_with(unique_sqls.size());
  std::vector<int64_t> direct_cost(query_graphs.size());
  for (size_t qi = 0; qi < query_graphs.size(); ++qi) {
    direct_cost[qi] = LeafCost(query_graphs[qi], *db, "", 0);
    rec.workload_cost_before += direct_cost[qi];
  }

  for (size_t ci = 0; ci < unique_sqls.size(); ++ci) {
    Candidate candidate;
    candidate.sql = unique_sqls[ci];

    SUMTAB_ASSIGN_OR_RETURN(
        QueryResult count,
        db->Query("select count(*) as n from (" + candidate.sql + ") c",
                  direct));
    candidate.estimated_rows = count.relation.rows[0][0].AsInt();

    SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                            sql::Parse(candidate.sql));
    SUMTAB_ASSIGN_OR_RETURN(qgm::Graph cand_graph,
                            qgm::BuildGraph(*stmt, db->catalog()));
    matching::SummaryTableDef def{"advisor_candidate", &cand_graph};

    cost_with[ci].assign(query_graphs.size(), -1);
    for (size_t qi = 0; qi < query_graphs.size(); ++qi) {
      SUMTAB_ASSIGN_OR_RETURN(
          matching::RewriteResult rewrite,
          matching::RewriteQuery(query_graphs[qi], def, db->catalog()));
      if (!rewrite.rewritten) continue;
      int64_t cost = LeafCost(rewrite.graph, *db, "advisor_candidate",
                              candidate.estimated_rows);
      if (cost < direct_cost[qi]) {
        cost_with[ci][qi] = cost;
        candidate.covered_queries.push_back(static_cast<int>(qi));
        candidate.standalone_benefit += direct_cost[qi] - cost;
      }
    }
    rec.candidates.push_back(std::move(candidate));
  }

  // Greedy selection by marginal benefit per materialized row.
  std::vector<int64_t> current_cost = direct_cost;
  int64_t rows_used = 0;
  while (true) {
    int best = -1;
    double best_ratio = 0;
    int64_t best_gain = 0;
    for (size_t ci = 0; ci < rec.candidates.size(); ++ci) {
      Candidate& candidate = rec.candidates[ci];
      if (candidate.chosen) continue;
      if (rows_used + candidate.estimated_rows > budget_rows) continue;
      int64_t gain = 0;
      for (size_t qi = 0; qi < query_graphs.size(); ++qi) {
        if (cost_with[ci][qi] >= 0 && cost_with[ci][qi] < current_cost[qi]) {
          gain += current_cost[qi] - cost_with[ci][qi];
        }
      }
      if (gain <= 0) continue;
      double ratio = static_cast<double>(gain) /
                     static_cast<double>(std::max<int64_t>(
                         1, candidate.estimated_rows));
      if (best == -1 || ratio > best_ratio) {
        best = static_cast<int>(ci);
        best_ratio = ratio;
        best_gain = gain;
      }
    }
    if (best == -1) break;
    (void)best_gain;
    rec.candidates[best].chosen = true;
    rows_used += rec.candidates[best].estimated_rows;
    for (size_t qi = 0; qi < query_graphs.size(); ++qi) {
      if (cost_with[best][qi] >= 0) {
        current_cost[qi] = std::min(current_cost[qi], cost_with[best][qi]);
      }
    }
  }
  rec.total_rows_used = rows_used;
  for (size_t qi = 0; qi < query_graphs.size(); ++qi) {
    rec.workload_cost_after += current_cost[qi];
  }
  return rec;
}

StatusOr<std::vector<std::string>> ApplyRecommendation(
    Database* db, const Recommendation& recommendation,
    const std::string& prefix) {
  std::vector<std::string> names;
  int counter = 0;
  for (const Candidate& candidate : recommendation.candidates) {
    if (!candidate.chosen) continue;
    std::string name = prefix + std::to_string(counter++);
    SUMTAB_ASSIGN_OR_RETURN(int64_t rows,
                            db->DefineSummaryTable(name, candidate.sql));
    (void)rows;
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace advisor
}  // namespace sumtab
