#include "advisor/advisor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/reject_reason.h"
#include "common/str_util.h"
#include "expr/expr_print.h"
#include "matching/rewriter.h"
#include "qgm/qgm_builder.h"
#include "qgm/qgm_to_sql.h"
#include "sql/parser.h"
#include "sumtab/maintenance.h"

namespace sumtab {
namespace advisor {

namespace {

/// Leaf-scan cost of a graph: total rows of all scanned base tables, with
/// `candidate_name` costed at `candidate_rows` (it is not materialized yet).
int64_t LeafCost(const qgm::Graph& graph, const Database& db,
                 const std::string& candidate_name, int64_t candidate_rows) {
  int64_t cost = 0;
  for (int id = 0; id < graph.size(); ++id) {
    const qgm::Box* box = graph.box(id);
    if (box->kind != qgm::Box::Kind::kBase) continue;
    cost += box->table_name == candidate_name ? candidate_rows
                                              : db.TableRows(box->table_name);
  }
  return cost;
}

/// Adds a COUNT(*) output to a GROUP-BY root unless one exists, so coarser
/// queries can re-aggregate through the candidate (rule (a) needs a count).
void EnsureCountStar(qgm::Box* root) {
  for (const auto& col : root->outputs) {
    if (col.expr != nullptr && col.expr->kind == expr::Expr::Kind::kAggregate &&
        col.expr->agg_star) {
      return;
    }
  }
  std::string name = "advisor_cnt";
  std::set<std::string> taken;
  for (const auto& col : root->outputs) taken.insert(col.name);
  for (int n = 2; taken.count(name) > 0; ++n) {
    name = "advisor_cnt_" + std::to_string(n);
  }
  root->outputs.push_back(qgm::OutputColumn{name, expr::CountStar()});
}

/// Rewrites a cloned candidate root down to one grouping set: grouping
/// outputs in `set` survive (in output order), every aggregate survives, and
/// the box becomes a simple GROUP BY over the survivors. Only safe on a
/// graph root — parents would hold dangling output indexes.
void ProjectRootToGroupingSet(qgm::Box* root, const std::vector<int>& set) {
  std::set<int> keep(set.begin(), set.end());
  std::vector<qgm::OutputColumn> grouping;
  std::vector<qgm::OutputColumn> aggregates;
  for (int i = 0; i < root->NumOutputs(); ++i) {
    if (root->IsGroupingOutput(i)) {
      if (keep.count(i) > 0) grouping.push_back(root->outputs[i]);
    } else {
      aggregates.push_back(root->outputs[i]);
    }
  }
  root->outputs.clear();
  for (auto& col : grouping) root->outputs.push_back(std::move(col));
  for (auto& col : aggregates) root->outputs.push_back(std::move(col));
  std::vector<int> gs;
  for (int i = 0; i < static_cast<int>(grouping.size()); ++i) gs.push_back(i);
  root->grouping_sets = {std::move(gs)};
  root->column_info.clear();
}

/// One generated candidate definition, pre-SQL-rendering.
struct ExtractedCandidate {
  qgm::Graph graph;
  std::string origin;  // "query" | "cuboid" | "merged"
};

/// Extracts candidate definitions from one query graph: for every GROUP-BY
/// box whose block sits directly over base tables, emit the subgraph rooted
/// at that GROUP-BY. A multi-grouping-set block (CUBE/ROLLUP/GROUPING SETS)
/// additionally yields its lattice points (Gray et al.): the finest
/// single-set cuboid over all grouping columns, plus each observed set — one
/// materialization per point the workload actually visits.
void ExtractCandidates(const qgm::Graph& graph,
                       std::vector<ExtractedCandidate>* out) {
  for (qgm::BoxId id : graph.TopologicalOrder()) {
    const qgm::Box* gb = graph.box(id);
    if (!gb->IsGroupBy()) continue;
    if (gb->quantifiers.size() != 1) continue;
    const qgm::Box* lower = graph.box(gb->quantifiers[0].child);
    if (lower->kind != qgm::Box::Kind::kSelect) continue;
    bool over_base = true;
    for (const qgm::Quantifier& q : lower->quantifiers) {
      over_base = over_base &&
                  graph.box(q.child)->kind == qgm::Box::Kind::kBase &&
                  q.kind == qgm::Quantifier::Kind::kForeach;
    }
    if (!over_base) continue;

    auto clone_block = [&graph, id]() {
      qgm::Graph candidate;
      qgm::BoxId root = candidate.CloneSubgraph(graph, id);
      candidate.set_root(root);
      return candidate;
    };

    // The block as written.
    {
      ExtractedCandidate cand;
      cand.graph = clone_block();
      cand.origin = "query";
      EnsureCountStar(cand.graph.box(cand.graph.root()));
      out->push_back(std::move(cand));
    }

    // Lattice points of a grouping-sets block.
    if (gb->grouping_sets.size() > 1) {
      std::vector<int> all = gb->GroupingOutputs();
      // The finest cuboid: every grouping column, one set. Answers the whole
      // lattice by re-aggregation at a fraction of the CUBE's stored rows.
      {
        ExtractedCandidate cand;
        cand.graph = clone_block();
        cand.origin = "cuboid";
        ProjectRootToGroupingSet(cand.graph.box(cand.graph.root()), all);
        EnsureCountStar(cand.graph.box(cand.graph.root()));
        out->push_back(std::move(cand));
      }
      // Each observed set (skip the finest — just emitted).
      for (const std::vector<int>& set : gb->grouping_sets) {
        if (set.size() == all.size()) continue;
        ExtractedCandidate cand;
        cand.graph = clone_block();
        cand.origin = "cuboid";
        ProjectRootToGroupingSet(cand.graph.box(cand.graph.root()), set);
        EnsureCountStar(cand.graph.box(cand.graph.root()));
        out->push_back(std::move(cand));
      }
    }
  }
}

/// Printed form of a root output resolved through its SELECT child: ColRefs
/// into the child are replaced by the child's defining expressions (over the
/// base quantifiers), so outputs of two compatible blocks compare by what
/// they compute, not by where their child happened to place columns.
std::string ResolvedPrint(const qgm::Box* sel, const expr::ExprPtr& e) {
  expr::ExprPtr resolved = expr::RewriteLeaves(
      e, [sel](const expr::ExprPtr& leaf) -> expr::ExprPtr {
        if (leaf->kind == expr::Expr::Kind::kColumnRef &&
            leaf->quantifier == 0 && leaf->column >= 0 &&
            leaf->column < sel->NumOutputs()) {
          return sel->outputs[leaf->column].expr;
        }
        return nullptr;
      });
  return expr::ToString(resolved);
}

/// Common-subexpression sharing across the workload (multi-query
/// optimization, cf. Roy et al.): two simple GROUP-BY blocks over the same
/// ordered base tables with identical predicates merge into ONE candidate
/// carrying the union of their grouping columns and aggregates — it answers
/// both queries for the storage of one table. Returns null when the blocks
/// are not compatible.
std::unique_ptr<qgm::Graph> MergeCandidatePair(const qgm::Graph& ga,
                                               const qgm::Graph& gb) {
  const qgm::Box* ra = ga.box(ga.root());
  const qgm::Box* rb = gb.box(gb.root());
  if (!ra->IsSimpleGroupBy() || !rb->IsSimpleGroupBy()) return nullptr;
  if (ra->quantifiers.size() != 1 || rb->quantifiers.size() != 1) {
    return nullptr;
  }
  const qgm::Box* sa = ga.box(ra->quantifiers[0].child);
  const qgm::Box* sb = gb.box(rb->quantifiers[0].child);
  if (sa->kind != qgm::Box::Kind::kSelect ||
      sb->kind != qgm::Box::Kind::kSelect || sa->distinct || sb->distinct) {
    return nullptr;
  }
  if (sa->quantifiers.size() != sb->quantifiers.size()) return nullptr;
  for (size_t i = 0; i < sa->quantifiers.size(); ++i) {
    const qgm::Box* base_a = ga.box(sa->quantifiers[i].child);
    const qgm::Box* base_b = gb.box(sb->quantifiers[i].child);
    if (base_a->kind != qgm::Box::Kind::kBase ||
        base_b->kind != qgm::Box::Kind::kBase ||
        base_a->table_name != base_b->table_name) {
      return nullptr;
    }
  }
  auto printed_predicates = [](const qgm::Box* sel) {
    std::vector<std::string> out;
    for (const expr::ExprPtr& p : sel->predicates) {
      out.push_back(expr::ToString(p));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  if (printed_predicates(sa) != printed_predicates(sb)) return nullptr;

  auto merged = std::make_unique<qgm::Graph>(qgm::Graph::CloneGraph(ga));
  qgm::Box* rm = merged->box(merged->root());
  qgm::Box* sm = merged->box(rm->quantifiers[0].child);

  // SELECT-child outputs by printed expression (quantifier order is aligned
  // between the two blocks, so prints are directly comparable).
  std::map<std::string, int> sel_index;
  std::set<std::string> sel_names;
  for (int i = 0; i < sm->NumOutputs(); ++i) {
    sel_index.emplace(expr::ToString(sm->outputs[i].expr), i);
    sel_names.insert(sm->outputs[i].name);
  }
  auto ensure_sel_output = [&](const qgm::OutputColumn& src) {
    std::string key = expr::ToString(src.expr);
    auto it = sel_index.find(key);
    if (it != sel_index.end()) return it->second;
    std::string name = src.name;
    for (int n = 2; sel_names.count(name) > 0; ++n) {
      name = src.name + "_m" + std::to_string(n);
    }
    sel_names.insert(name);
    sm->outputs.push_back(qgm::OutputColumn{name, src.expr});
    int idx = sm->NumOutputs() - 1;
    sel_index.emplace(std::move(key), idx);
    return idx;
  };

  std::set<std::string> have;
  std::set<std::string> out_names;
  std::vector<qgm::OutputColumn> grouping;
  std::vector<qgm::OutputColumn> aggregates;
  for (int i = 0; i < rm->NumOutputs(); ++i) {
    have.insert(ResolvedPrint(sm, rm->outputs[i].expr));
    out_names.insert(rm->outputs[i].name);
    (rm->IsGroupingOutput(i) ? grouping : aggregates)
        .push_back(rm->outputs[i]);
  }
  for (int i = 0; i < rb->NumOutputs(); ++i) {
    std::string key = ResolvedPrint(sb, rb->outputs[i].expr);
    if (have.count(key) > 0) continue;
    bool remappable = true;
    expr::ExprPtr remapped = expr::RewriteLeaves(
        rb->outputs[i].expr,
        [&](const expr::ExprPtr& leaf) -> expr::ExprPtr {
          if (leaf->kind != expr::Expr::Kind::kColumnRef) {
            remappable = false;
            return nullptr;
          }
          if (leaf->quantifier != 0 || leaf->column < 0 ||
              leaf->column >= sb->NumOutputs()) {
            remappable = false;
            return nullptr;
          }
          return expr::ColRef(0, ensure_sel_output(sb->outputs[leaf->column]));
        });
    if (!remappable) return nullptr;
    have.insert(std::move(key));
    std::string name = rb->outputs[i].name;
    for (int n = 2; out_names.count(name) > 0; ++n) {
      name = rb->outputs[i].name + "_m" + std::to_string(n);
    }
    out_names.insert(name);
    qgm::OutputColumn col{std::move(name), std::move(remapped)};
    (rb->IsGroupingOutput(i) ? grouping : aggregates).push_back(std::move(col));
  }
  rm->outputs.clear();
  for (auto& col : grouping) rm->outputs.push_back(std::move(col));
  for (auto& col : aggregates) rm->outputs.push_back(std::move(col));
  std::vector<int> gs;
  for (int i = 0; i < static_cast<int>(grouping.size()); ++i) gs.push_back(i);
  rm->grouping_sets = {std::move(gs)};
  rm->column_info.clear();
  sm->column_info.clear();
  return merged;
}

/// A catalog-free name for the temporary rewrite probe. The fixed string
/// "advisor_candidate" used to collide with a user table of that name and
/// silently mis-cost every candidate; gensym against the catalog instead.
StatusOr<std::string> GensymPlaceholder(const catalog::Catalog& catalog) {
  std::string name = "advisor_candidate";
  for (int i = 1; catalog.FindTable(name) != nullptr; ++i) {
    if (i > 10000) {
      return RejectUnsupported(RejectReason::kAdvisorNamespaceExhausted,
                               "no free probe name near 'advisor_candidate'");
    }
    name = "advisor_candidate_" + std::to_string(i);
  }
  return name;
}

/// Merged-pair generation is quadratic; bound the pool it draws from.
constexpr size_t kMaxMergeSources = 32;

}  // namespace

StatusOr<Recommendation> RecommendForWorkload(
    Database* db, const std::vector<WorkloadQuery>& workload,
    const AdvisorOptions& options) {
  Recommendation rec;
  rec.budget_rows = options.budget_rows;
  if (rec.budget_rows < 0) {
    // Default budget: as many materialized rows as the base data holds.
    rec.budget_rows = 0;
    for (const std::string& name : db->catalog().TableNames()) {
      const catalog::Table* meta = db->catalog().FindTable(name);
      if (meta == nullptr || meta->is_summary_table) continue;
      rec.budget_rows += db->TableRows(name);
    }
  }

  // Parse the workload once. Entries that no longer parse/build (the log may
  // hold queries over since-dropped tables) are skipped, not fatal.
  struct ParsedQuery {
    qgm::Graph graph;
    int64_t weight = 1;
    int workload_index = 0;
  };
  std::vector<ParsedQuery> queries;
  for (size_t i = 0; i < workload.size(); ++i) {
    StatusOr<std::shared_ptr<sql::SelectStmt>> stmt =
        sql::Parse(workload[i].sql);
    if (!stmt.ok()) continue;
    StatusOr<qgm::Graph> graph = qgm::BuildGraph(**stmt, db->catalog());
    if (!graph.ok()) continue;
    ParsedQuery pq;
    pq.graph = std::move(*graph);
    pq.weight = std::max<int64_t>(1, workload[i].weight);
    pq.workload_index = static_cast<int>(i);
    queries.push_back(std::move(pq));
  }

  // Candidate generation: per-query blocks + cuboid lattice points...
  std::vector<ExtractedCandidate> extracted;
  for (const ParsedQuery& pq : queries) {
    ExtractCandidates(pq.graph, &extracted);
  }
  // ...then cross-query merges over the (deduped, bounded) query blocks.
  {
    std::vector<const qgm::Graph*> sources;
    std::set<std::string> seen_sources;
    for (const ExtractedCandidate& cand : extracted) {
      if (cand.origin != "query" || sources.size() >= kMaxMergeSources) {
        continue;
      }
      StatusOr<std::string> sql = qgm::ToSql(cand.graph);
      if (!sql.ok() || !seen_sources.insert(NormalizeSqlText(*sql)).second) {
        continue;
      }
      sources.push_back(&cand.graph);
    }
    std::vector<ExtractedCandidate> merged;
    for (size_t i = 0; i < sources.size(); ++i) {
      for (size_t j = i + 1; j < sources.size(); ++j) {
        std::unique_ptr<qgm::Graph> m =
            MergeCandidatePair(*sources[i], *sources[j]);
        if (m == nullptr) continue;
        ExtractedCandidate cand;
        cand.graph = std::move(*m);
        cand.origin = "merged";
        merged.push_back(std::move(cand));
      }
    }
    for (ExtractedCandidate& cand : merged) {
      extracted.push_back(std::move(cand));
    }
  }

  // Render + dedupe by normalized text. Candidates extracted from different
  // queries but textually identical collapse to ONE entry whose coverage is
  // computed against the whole workload below (the raw std::set dedup used
  // to let whitespace variants through as distinct candidates).
  struct UniqueCandidate {
    std::string sql;
    std::string origin;
  };
  std::vector<UniqueCandidate> unique;
  {
    std::set<std::string> seen;
    for (const ExtractedCandidate& cand : extracted) {
      StatusOr<std::string> sql = qgm::ToSql(cand.graph);
      if (!sql.ok()) continue;
      if (!seen.insert(NormalizeSqlText(*sql)).second) continue;
      unique.push_back(UniqueCandidate{std::move(*sql), cand.origin});
    }
  }

  // Direct (no-AST) workload cost, frequency-weighted.
  std::vector<int64_t> direct_cost(queries.size(), 0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    direct_cost[qi] = queries[qi].weight * LeafCost(queries[qi].graph, *db, "", 0);
    rec.workload_cost_before += direct_cost[qi];
  }

  SUMTAB_ASSIGN_OR_RETURN(std::string placeholder,
                          GensymPlaceholder(db->catalog()));

  // Observed append traffic, by lower-cased table, for maintenance costing.
  std::map<std::string, WorkloadAppendStats> appends;
  for (const auto& [table, stats] : db->WorkloadLogSnapshot().appends) {
    WorkloadAppendStats& merged = appends[ToLower(table)];
    merged.batches += stats.batches;
    merged.rows += stats.rows;
  }

  // Size + benefit + maintenance estimation per candidate. The sizing probe
  // must not rewrite (the candidate is priced directly) and must not record
  // itself into the workload log the advisor is mining.
  QueryOptions direct;
  direct.enable_rewrite = false;
  direct.record_workload = false;
  std::vector<std::vector<int64_t>> cost_with;
  for (const UniqueCandidate& uc : unique) {
    Candidate candidate;
    candidate.sql = uc.sql;
    candidate.origin = uc.origin;

    StatusOr<QueryResult> count =
        db->Query("select count(*) as n from (" + candidate.sql + ") c",
                  direct);
    if (!count.ok() || count->relation.rows.empty()) continue;
    candidate.estimated_rows = count->relation.rows[0][0].AsInt();

    StatusOr<std::shared_ptr<sql::SelectStmt>> stmt = sql::Parse(candidate.sql);
    if (!stmt.ok()) continue;
    StatusOr<qgm::Graph> built = qgm::BuildGraph(**stmt, db->catalog());
    if (!built.ok()) continue;
    qgm::Graph cand_graph = std::move(*built);
    matching::SummaryTableDef def{placeholder, &cand_graph};

    std::vector<int64_t> costs(queries.size(), -1);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      StatusOr<matching::RewriteResult> rewrite =
          matching::RewriteQuery(queries[qi].graph, def, db->catalog());
      if (!rewrite.ok() || !rewrite->rewritten) continue;
      int64_t cost = queries[qi].weight *
                     LeafCost(rewrite->graph, *db, placeholder,
                              candidate.estimated_rows);
      if (cost < direct_cost[qi]) {
        costs[qi] = cost;
        candidate.covered_queries.push_back(queries[qi].workload_index);
        candidate.standalone_benefit += direct_cost[qi] - cost;
      }
    }

    // Maintenance charge from the observed append rates: an incremental
    // merge costs about the appended rows; a forced recompute costs about
    // (append batches) x (the candidate's base scan).
    int64_t charge = 0;
    int64_t cand_base_rows = LeafCost(cand_graph, *db, "", 0);
    for (const std::string& table : matching::LeafBaseTables(cand_graph)) {
      auto it = appends.find(ToLower(table));
      if (it == appends.end()) continue;
      StatusOr<maintenance::MergePlan> plan =
          maintenance::AnalyzeMergePlan(cand_graph, table);
      if (plan.ok()) {
        charge += it->second.rows;
      } else {
        candidate.maintainable = false;
        charge += it->second.batches * cand_base_rows;
      }
    }
    candidate.maintenance_cost =
        static_cast<int64_t>(options.maintenance_weight *
                             static_cast<double>(charge));

    cost_with.push_back(std::move(costs));
    rec.candidates.push_back(std::move(candidate));
  }
  MetricsRegistry::Global()
      .counter("advisor.candidates")
      ->Increment(static_cast<int64_t>(rec.candidates.size()));

  // Greedy selection by net marginal benefit per materialized row: scan
  // savings minus the maintenance charge, normalized by storage. Ties break
  // deterministically (higher ratio, then fewer rows, then smaller SQL) so a
  // fixed workload and budget always yield the same recommendation.
  std::vector<int64_t> current_cost = direct_cost;
  int64_t rows_used = 0;
  while (true) {
    int best = -1;
    double best_ratio = 0;
    for (size_t ci = 0; ci < rec.candidates.size(); ++ci) {
      Candidate& candidate = rec.candidates[ci];
      if (candidate.chosen) continue;
      if (rows_used + candidate.estimated_rows > rec.budget_rows) continue;
      int64_t gain = 0;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        if (cost_with[ci][qi] >= 0 && cost_with[ci][qi] < current_cost[qi]) {
          gain += current_cost[qi] - cost_with[ci][qi];
        }
      }
      int64_t net = gain - candidate.maintenance_cost;
      if (net <= 0) continue;
      double ratio =
          static_cast<double>(net) /
          static_cast<double>(std::max<int64_t>(1, candidate.estimated_rows));
      bool better = best == -1 || ratio > best_ratio;
      if (!better && best != -1 && ratio == best_ratio) {
        const Candidate& incumbent = rec.candidates[best];
        better = candidate.estimated_rows < incumbent.estimated_rows ||
                 (candidate.estimated_rows == incumbent.estimated_rows &&
                  candidate.sql < incumbent.sql);
      }
      if (better) {
        best = static_cast<int>(ci);
        best_ratio = ratio;
      }
    }
    if (best == -1) break;
    rec.candidates[best].chosen = true;
    rows_used += rec.candidates[best].estimated_rows;
    rec.maintenance_cost += rec.candidates[best].maintenance_cost;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (cost_with[best][qi] >= 0) {
        current_cost[qi] = std::min(current_cost[qi], cost_with[best][qi]);
      }
    }
  }
  rec.total_rows_used = rows_used;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    rec.workload_cost_after += current_cost[qi];
  }
  return rec;
}

StatusOr<Recommendation> RecommendSummaryTables(
    Database* db, const std::vector<std::string>& workload,
    int64_t budget_rows) {
  std::vector<WorkloadQuery> weighted;
  weighted.reserve(workload.size());
  for (const std::string& sql : workload) {
    weighted.push_back(WorkloadQuery{sql, 1});
  }
  AdvisorOptions options;
  options.budget_rows = budget_rows;
  return RecommendForWorkload(db, weighted, options);
}

StatusOr<std::vector<std::string>> ApplyRecommendation(
    Database* db, const Recommendation& recommendation,
    const std::string& prefix) {
  std::vector<std::string> names;
  // All-or-nothing: a failure after some definitions succeeded must not
  // leave a half-applied recommendation behind.
  auto rollback = [&]() {
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
      (void)db->DropSummaryTable(*it);
    }
  };
  int counter = 0;
  for (const Candidate& candidate : recommendation.candidates) {
    if (!candidate.chosen) continue;
    // `prefix + counter` used to collide with whatever already carried that
    // name (a user table, or a previous advisor run's AST) and fail the
    // whole apply; skip taken names instead.
    std::string name;
    while (true) {
      if (counter > 1000000) {
        rollback();
        return RejectUnsupported(RejectReason::kAdvisorNamespaceExhausted,
                                 "no free AST name under prefix '" + prefix +
                                     "'");
      }
      name = prefix + std::to_string(counter++);
      if (db->catalog().FindTable(name) == nullptr) break;
    }
    StatusOr<int64_t> rows =
        db->DefineSummaryTable(name, candidate.sql, /*advisor_owned=*/true);
    if (!rows.ok()) {
      rollback();
      return rows.status();
    }
    names.push_back(std::move(name));
    // Models a failure in the window between two defines (the rollback path
    // resilience tests arm this).
    Status injected = FaultInjector::Instance().Check("advisor/apply");
    if (!injected.ok()) {
      rollback();
      return injected;
    }
  }
  return names;
}

StatusOr<TuneOutcome> AdviseAndApply(Database* db,
                                     const AdvisorOptions& options) {
  MetricsRegistry::Global().counter("advisor.runs")->Increment();
  TuneOutcome outcome;

  // 1. Decay pass: advisor-owned ASTs that stopped earning rewrites are
  //    dropped BEFORE recommending, freeing their budget for better choices.
  for (const std::string& name : db->SummaryTableNames()) {
    StatusOr<SummaryTableInfo> info = db->GetSummaryTableInfo(name);
    if (!info.ok() || !info->advisor_owned) continue;
    if (info->queries_since_creation < options.min_queries_before_drop) {
      continue;
    }
    double rate = static_cast<double>(info->rewrite_hits) /
                  static_cast<double>(info->queries_since_creation);
    if (rate >= options.min_hit_rate) continue;
    if (!db->DropSummaryTable(name).ok()) continue;
    MetricsRegistry::Global().counter("advisor.dropped")->Increment();
    outcome.dropped.push_back(name);
    outcome.actions.push_back(TuneAction{
        "drop", name, 0,
        "hit rate " + std::to_string(rate) + " (" +
            std::to_string(info->rewrite_hits) + "/" +
            std::to_string(info->queries_since_creation) + ") below " +
            std::to_string(options.min_hit_rate)});
  }

  // 2. Mine the observed workload.
  WorkloadSnapshot log = db->WorkloadLogSnapshot();
  std::vector<WorkloadQuery> workload;
  workload.reserve(log.queries.size());
  for (const WorkloadQueryStats& q : log.queries) {
    workload.push_back(WorkloadQuery{q.normalized_sql, q.executions});
  }
  SUMTAB_ASSIGN_OR_RETURN(outcome.recommendation,
                          RecommendForWorkload(db, workload, options));
  Recommendation& rec = outcome.recommendation;
  int64_t chosen = 0;
  for (const Candidate& c : rec.candidates) chosen += c.chosen ? 1 : 0;
  MetricsRegistry::Global().counter("advisor.chosen")->Increment(chosen);

  // 3. Apply, skipping candidates an existing AST already embodies (TUNE
  //    must be idempotent for an unchanged workload).
  std::set<std::string> existing;
  for (const std::string& name : db->SummaryTableNames()) {
    StatusOr<SummaryTableInfo> info = db->GetSummaryTableInfo(name);
    if (info.ok()) existing.insert(NormalizeSqlText(info->sql));
  }
  Recommendation to_apply;
  to_apply.budget_rows = rec.budget_rows;
  std::vector<const Candidate*> applied_candidates;
  for (const Candidate& c : rec.candidates) {
    if (!c.chosen) continue;
    if (existing.count(NormalizeSqlText(c.sql)) > 0) continue;
    to_apply.candidates.push_back(c);
    applied_candidates.push_back(&c);
  }
  SUMTAB_ASSIGN_OR_RETURN(
      outcome.created,
      ApplyRecommendation(db, to_apply, options.name_prefix));
  MetricsRegistry::Global()
      .counter("advisor.created")
      ->Increment(static_cast<int64_t>(outcome.created.size()));
  for (size_t i = 0; i < outcome.created.size(); ++i) {
    const Candidate* c =
        i < applied_candidates.size() ? applied_candidates[i] : nullptr;
    outcome.actions.push_back(TuneAction{
        "create", outcome.created[i], db->TableRows(outcome.created[i]),
        c == nullptr
            ? ""
            : c->origin + ", covers " +
                  std::to_string(c->covered_queries.size()) +
                  " quer(ies), benefit " +
                  std::to_string(c->standalone_benefit) + ", maintenance " +
                  std::to_string(c->maintenance_cost)});
  }
  outcome.actions.push_back(TuneAction{
      "summary", "", rec.total_rows_used,
      "workload cost " + std::to_string(rec.workload_cost_before) + " -> " +
          std::to_string(rec.workload_cost_after) + " under budget " +
          std::to_string(rec.budget_rows) + " row(s)"});
  return outcome;
}

}  // namespace advisor
}  // namespace sumtab
