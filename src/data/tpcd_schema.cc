#include "data/tpcd_schema.h"

#include <string>
#include <vector>

#include "common/date.h"

namespace sumtab {
namespace data {

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int Uniform(int bound) { return static_cast<int>(Next() % bound); }
  double UnitDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

constexpr const char* kNations[] = {"FRANCE", "GERMANY", "JAPAN", "CHINA",
                                    "USA",    "CANADA",  "BRAZIL", "INDIA"};
constexpr const char* kRegions[] = {"EUROPE", "EUROPE", "ASIA", "ASIA",
                                    "AMERICA", "AMERICA", "AMERICA", "ASIA"};
constexpr const char* kTypes[] = {"BRASS", "COPPER", "NICKEL", "STEEL", "TIN"};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};

}  // namespace

Status SetupTpcdSchema(Database* db, const TpcdParams& params) {
  using catalog::Column;
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "nation",
      {Column{"nkey", Type::kInt, false}, Column{"nname", Type::kString, false},
       Column{"rname", Type::kString, false}},
      {"nkey"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "customer",
      {Column{"ckey", Type::kInt, false}, Column{"cname", Type::kString, false},
       Column{"nkey", Type::kInt, false},
       Column{"segment", Type::kString, false}},
      {"ckey"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "part",
      {Column{"pkey", Type::kInt, false}, Column{"pname", Type::kString, false},
       Column{"ptype", Type::kString, false},
       Column{"pbrand", Type::kString, false}},
      {"pkey"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "orders",
      {Column{"okey", Type::kInt, false}, Column{"ckey", Type::kInt, false},
       Column{"odate", Type::kDate, false},
       Column{"opriority", Type::kString, false}},
      {"okey"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "lineitem",
      {Column{"lkey", Type::kInt, false}, Column{"okey", Type::kInt, false},
       Column{"pkey", Type::kInt, false}, Column{"lqty", Type::kInt, false},
       Column{"lprice", Type::kDouble, false},
       Column{"ldisc", Type::kDouble, false},
       Column{"shipdate", Type::kDate, false}},
      {"lkey"}));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("customer", "nkey", "nation", "nkey"));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("orders", "ckey", "customer", "ckey"));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("lineitem", "okey", "orders", "okey"));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("lineitem", "pkey", "part", "pkey"));

  Rng rng(params.seed);

  std::vector<Row> nation;
  for (int n = 0; n < 8; ++n) {
    nation.push_back(Row{Value::Int(n), Value::String(kNations[n]),
                         Value::String(kRegions[n])});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("nation", std::move(nation)));

  std::vector<Row> customer;
  for (int c = 0; c < params.num_customers; ++c) {
    customer.push_back(Row{Value::Int(c),
                           Value::String("Customer#" + std::to_string(c)),
                           Value::Int(rng.Uniform(8)),
                           Value::String(kSegments[rng.Uniform(5)])});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("customer", std::move(customer)));

  std::vector<Row> part;
  for (int p = 0; p < params.num_parts; ++p) {
    part.push_back(Row{Value::Int(p),
                       Value::String("Part#" + std::to_string(p)),
                       Value::String(kTypes[rng.Uniform(5)]),
                       Value::String("Brand#" + std::to_string(rng.Uniform(25)))});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("part", std::move(part)));

  std::vector<Row> orders;
  for (int o = 0; o < params.num_orders; ++o) {
    int year = params.start_year + rng.Uniform(params.num_years);
    orders.push_back(Row{
        Value::Int(o), Value::Int(rng.Uniform(params.num_customers)),
        Value::Date(MakeDate(year, 1 + rng.Uniform(12), 1 + rng.Uniform(28))),
        Value::String(kPriorities[rng.Uniform(5)])});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("orders", std::move(orders)));

  std::vector<Row> lineitem;
  lineitem.reserve(params.num_lineitems);
  for (int64_t l = 0; l < params.num_lineitems; ++l) {
    int year = params.start_year + rng.Uniform(params.num_years);
    lineitem.push_back(Row{
        Value::Int(l), Value::Int(rng.Uniform(params.num_orders)),
        Value::Int(rng.Uniform(params.num_parts)),
        Value::Int(1 + rng.Uniform(50)),
        Value::Double(900.0 + rng.UnitDouble() * 100000.0),
        Value::Double(rng.Uniform(11) / 100.0),
        Value::Date(MakeDate(year, 1 + rng.Uniform(12), 1 + rng.Uniform(28)))});
  }
  return db->BulkLoad("lineitem", std::move(lineitem));
}

}  // namespace data
}  // namespace sumtab
