#include "data/card_schema.h"

#include <string>
#include <vector>

#include "common/date.h"

namespace sumtab {
namespace data {

namespace {

/// SplitMix64: small, deterministic, seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int Uniform(int bound) { return static_cast<int>(Next() % bound); }
  double UnitDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

constexpr const char* kStates[] = {"CA", "NY", "TX", "WA",
                                   "ON", "BC", "IL", "FL"};
constexpr const char* kPGroupNames[] = {"TV",     "audio",  "laptop",
                                        "phone",  "camera", "console",
                                        "tablet", "watch",  "printer",
                                        "router", "drone",  "monitor"};

}  // namespace

Status SetupCardSchema(Database* db, const CardSchemaParams& params) {
  using catalog::Column;
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "cust",
      {Column{"cid", Type::kInt, false}, Column{"cname", Type::kString, false},
       Column{"age", Type::kInt, false}},
      {"cid"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "acct",
      {Column{"aid", Type::kInt, false}, Column{"cid", Type::kInt, false},
       Column{"status", Type::kString, false}},
      {"aid"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "loc",
      {Column{"lid", Type::kInt, false}, Column{"city", Type::kString, false},
       Column{"state", Type::kString, false},
       Column{"country", Type::kString, false}},
      {"lid"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "pgroup",
      {Column{"pgid", Type::kInt, false},
       Column{"pgname", Type::kString, false}},
      {"pgid"}));
  SUMTAB_RETURN_NOT_OK(db->CreateTable(
      "trans",
      {Column{"tid", Type::kInt, false}, Column{"faid", Type::kInt, false},
       Column{"fpgid", Type::kInt, false}, Column{"flid", Type::kInt, false},
       Column{"date", Type::kDate, false}, Column{"qty", Type::kInt, false},
       Column{"price", Type::kDouble, false},
       Column{"disc", Type::kDouble, false}},
      {"tid"}));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("acct", "cid", "cust", "cid"));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("trans", "faid", "acct", "aid"));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("trans", "flid", "loc", "lid"));
  SUMTAB_RETURN_NOT_OK(db->AddForeignKey("trans", "fpgid", "pgroup", "pgid"));

  Rng rng(params.seed);

  std::vector<Row> cust;
  for (int c = 0; c < params.num_customers; ++c) {
    cust.push_back(Row{Value::Int(c), Value::String("cust" + std::to_string(c)),
                       Value::Int(21 + rng.Uniform(60))});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("cust", std::move(cust)));

  std::vector<Row> acct;
  for (int a = 0; a < params.num_accounts; ++a) {
    acct.push_back(Row{Value::Int(a),
                       Value::Int(rng.Uniform(params.num_customers)),
                       Value::String(rng.Uniform(10) < 8 ? "active"
                                                         : "frozen")});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("acct", std::move(acct)));

  std::vector<Row> loc;
  const int num_states = static_cast<int>(sizeof(kStates) / sizeof(kStates[0]));
  for (int l = 0; l < params.num_locations; ++l) {
    int state_idx = l % num_states;
    // ON and BC are Canadian; the rest are USA.
    bool canadian = state_idx == 4 || state_idx == 5;
    loc.push_back(Row{Value::Int(l),
                      Value::String("city" + std::to_string(l)),
                      Value::String(kStates[state_idx]),
                      Value::String(canadian ? "Canada" : "USA")});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("loc", std::move(loc)));

  std::vector<Row> pgroup;
  for (int p = 0; p < params.num_pgroups; ++p) {
    pgroup.push_back(Row{Value::Int(p), Value::String(kPGroupNames[p % 12])});
  }
  SUMTAB_RETURN_NOT_OK(db->BulkLoad("pgroup", std::move(pgroup)));

  // Each account has a home location: ~85% of its transactions happen there,
  // giving the heavy skew that makes per-(account, location, year) summaries
  // ~100x smaller than the fact table.
  std::vector<int> home(params.num_accounts);
  for (int a = 0; a < params.num_accounts; ++a) {
    home[a] = rng.Uniform(params.num_locations);
  }
  std::vector<Row> trans;
  trans.reserve(params.num_trans);
  for (int64_t t = 0; t < params.num_trans; ++t) {
    int account = rng.Uniform(params.num_accounts);
    int location = rng.Uniform(100) < 85 ? home[account]
                                         : rng.Uniform(params.num_locations);
    int year = params.start_year + rng.Uniform(params.num_years);
    int month = 1 + rng.Uniform(12);
    int day = 1 + rng.Uniform(28);
    double price = 5.0 + rng.UnitDouble() * 995.0;
    double disc = rng.Uniform(10) < 3 ? 0.05 + rng.UnitDouble() * 0.25 : 0.0;
    trans.push_back(Row{Value::Int(t), Value::Int(account),
                        Value::Int(rng.Uniform(params.num_pgroups)),
                        Value::Int(location),
                        Value::Date(MakeDate(year, month, day)),
                        Value::Int(1 + rng.Uniform(5)), Value::Double(price),
                        Value::Double(disc)});
  }
  return db->BulkLoad("trans", std::move(trans));
}

}  // namespace data
}  // namespace sumtab
