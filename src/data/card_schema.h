// The paper's credit-card star schema (Fig. 1) and a deterministic synthetic
// data generator for it.
//
//   trans(tid, faid, fpgid, flid, date, qty, price, disc)   -- fact
//   pgroup(pgid, pgname)                                     -- product dim
//   loc(lid, city, state, country)                           -- location dim
//   acct(aid, cid, status)                                   -- account dim
//   cust(cid, cname, age)                                    -- customer dim
//
// RI: trans.faid -> acct.aid, trans.fpgid -> pgroup.pgid,
//     trans.flid -> loc.lid, acct.cid -> cust.cid.
//
// Cardinalities are shaped so that per-(account, location, year) aggregates
// shrink the fact table by roughly the factor the paper quotes ("AST1 is
// about a hundred times smaller than Trans"): each account performs a few
// hundred transactions per year, mostly in one city.
#ifndef SUMTAB_DATA_CARD_SCHEMA_H_
#define SUMTAB_DATA_CARD_SCHEMA_H_

#include <cstdint>

#include "common/status.h"
#include "sumtab/database.h"

namespace sumtab {
namespace data {

struct CardSchemaParams {
  int64_t num_trans = 100000;
  int num_accounts = 50;
  int num_customers = 20;
  int num_locations = 40;   // spread over ~8 states, 2 countries
  int num_pgroups = 12;
  int start_year = 1990;
  int num_years = 5;
  uint64_t seed = 42;
};

/// Creates the five tables (with PKs and FKs) and loads generated data.
Status SetupCardSchema(Database* db, const CardSchemaParams& params = {});

}  // namespace data
}  // namespace sumtab

#endif  // SUMTAB_DATA_CARD_SCHEMA_H_
