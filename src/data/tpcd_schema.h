// A miniature TPC-D-like star schema (the paper's Sec. 1/8 performance
// claims come from TPC-D experience): lineitem fact with order, part and
// customer dimensions, plus region-coded nations.
//
//   lineitem(lkey, okey, pkey, lqty, lprice, ldisc, shipdate)
//   orders(okey, ckey, odate, opriority)
//   part(pkey, pname, ptype, pbrand)
//   customer(ckey, cname, nkey, segment)
//   nation(nkey, nname, rname)
//
// RI: lineitem.okey -> orders.okey, lineitem.pkey -> part.pkey,
//     orders.ckey -> customer.ckey, customer.nkey -> nation.nkey.
#ifndef SUMTAB_DATA_TPCD_SCHEMA_H_
#define SUMTAB_DATA_TPCD_SCHEMA_H_

#include <cstdint>

#include "common/status.h"
#include "sumtab/database.h"

namespace sumtab {
namespace data {

struct TpcdParams {
  int64_t num_lineitems = 200000;
  int num_orders = 20000;
  int num_parts = 500;
  int num_customers = 300;
  int start_year = 1992;
  int num_years = 6;
  uint64_t seed = 7;
};

Status SetupTpcdSchema(Database* db, const TpcdParams& params = {});

}  // namespace data
}  // namespace sumtab

#endif  // SUMTAB_DATA_TPCD_SCHEMA_H_
