#include "expr/expr_eval.h"

#include <cmath>

#include "common/date.h"
#include "common/str_util.h"

namespace sumtab {
namespace expr {

namespace {

bool BothInts(const Value& a, const Value& b) {
  return a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt;
}

StatusOr<Value> EvalArith(BinaryOp op, const Value& left, const Value& right) {
  if (!left.IsNumeric() || !right.IsNumeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  switch (op) {
    case BinaryOp::kAdd:
      if (BothInts(left, right)) return Value::Int(left.AsInt() + right.AsInt());
      return Value::Double(left.ToDouble() + right.ToDouble());
    case BinaryOp::kSub:
      if (BothInts(left, right)) return Value::Int(left.AsInt() - right.AsInt());
      return Value::Double(left.ToDouble() - right.ToDouble());
    case BinaryOp::kMul:
      if (BothInts(left, right)) return Value::Int(left.AsInt() * right.AsInt());
      return Value::Double(left.ToDouble() * right.ToDouble());
    case BinaryOp::kDiv: {
      // '/' always computes in double; integer division surprises are not
      // worth it in an analytics engine. 0-divisor yields NULL.
      double d = right.ToDouble();
      if (d == 0.0) return Value::Null();
      return Value::Double(left.ToDouble() / d);
    }
    case BinaryOp::kMod: {
      if (!BothInts(left, right)) {
        return Status::InvalidArgument("% requires integer operands");
      }
      int64_t d = right.AsInt();
      if (d == 0) return Value::Null();
      return Value::Int(left.AsInt() % d);
    }
    default:
      return Status::Internal("EvalArith: not an arithmetic op");
  }
}

}  // namespace

Value CompareValues(BinaryOp op, const Value& left, const Value& right) {
  bool eq;
  bool lt;
  if (left.IsNumeric() && right.IsNumeric()) {
    double a = left.ToDouble();
    double b = right.ToDouble();
    eq = a == b;
    lt = a < b;
  } else if (left.kind() == Value::Kind::kString &&
             right.kind() == Value::Kind::kString) {
    int c = left.AsString().compare(right.AsString());
    eq = c == 0;
    lt = c < 0;
  } else {
    // Incomparable kinds: only (in)equality is meaningful.
    eq = false;
    lt = false;
  }
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(eq);
    case BinaryOp::kNe:
      return Value::Bool(!eq);
    case BinaryOp::kLt:
      return Value::Bool(lt);
    case BinaryOp::kLe:
      return Value::Bool(lt || eq);
    case BinaryOp::kGt:
      return Value::Bool(!lt && !eq);
    case BinaryOp::kGe:
      return Value::Bool(!lt);
    default:
      return Value::Null();
  }
}

StatusOr<Value> EvalBinaryScalar(BinaryOp op, const Value& left,
                                 const Value& right) {
  if (left.is_null() || right.is_null()) return Value::Null();
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return CompareValues(op, left, right);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return Status::Internal("EvalBinaryScalar: AND/OR need 3VL handling");
    default:
      return EvalArith(op, left, right);
  }
}

StatusOr<Value> Eval(const ExprPtr& e, const EvalContext& ctx) {
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      return e->literal;

    case Expr::Kind::kColumnRef:
      return ctx.ColumnValue(e->quantifier, e->column);

    case Expr::Kind::kRejoinRef:
      return Status::Internal("rejoin reference escaped the matcher");

    case Expr::Kind::kColumnName:
      return Status::Internal("unresolved column '" + e->name +
                              "' reached the evaluator");

    case Expr::Kind::kScalarSubquery:
      return Status::Internal(
          "scalar subquery reached the evaluator (QGM builder should have "
          "converted it)");

    case Expr::Kind::kUnary: {
      SUMTAB_ASSIGN_OR_RETURN(Value v, Eval(e->children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (e->unary_op == UnaryOp::kNeg) {
        if (v.kind() == Value::Kind::kInt) return Value::Int(-v.AsInt());
        if (v.IsNumeric()) return Value::Double(-v.ToDouble());
        return Status::InvalidArgument("negation of non-numeric value");
      }
      // kNot
      if (v.kind() != Value::Kind::kBool) {
        return Status::InvalidArgument("NOT on non-boolean value");
      }
      return Value::Bool(!v.AsBool());
    }

    case Expr::Kind::kBinary: {
      BinaryOp op = e->binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        SUMTAB_ASSIGN_OR_RETURN(Value l, Eval(e->children[0], ctx));
        SUMTAB_ASSIGN_OR_RETURN(Value r, Eval(e->children[1], ctx));
        // 3VL: NULL acts as 'unknown'.
        auto truth = [](const Value& v) -> int {
          if (v.is_null()) return -1;
          return v.AsBool() ? 1 : 0;
        };
        int a = truth(l);
        int b = truth(r);
        if (op == BinaryOp::kAnd) {
          if (a == 0 || b == 0) return Value::Bool(false);
          if (a == -1 || b == -1) return Value::Null();
          return Value::Bool(true);
        }
        if (a == 1 || b == 1) return Value::Bool(true);
        if (a == -1 || b == -1) return Value::Null();
        return Value::Bool(false);
      }
      SUMTAB_ASSIGN_OR_RETURN(Value l, Eval(e->children[0], ctx));
      SUMTAB_ASSIGN_OR_RETURN(Value r, Eval(e->children[1], ctx));
      return EvalBinaryScalar(op, l, r);
    }

    case Expr::Kind::kFunction: {
      if (e->children.size() == 1 &&
          (EqualsIgnoreCase(e->name, "year") ||
           EqualsIgnoreCase(e->name, "month") ||
           EqualsIgnoreCase(e->name, "day"))) {
        SUMTAB_ASSIGN_OR_RETURN(Value v, Eval(e->children[0], ctx));
        if (v.is_null()) return Value::Null();
        if (v.kind() != Value::Kind::kDate) {
          return Status::InvalidArgument(e->name + "() requires a DATE");
        }
        int32_t d = v.AsDate();
        if (EqualsIgnoreCase(e->name, "year")) return Value::Int(DateYear(d));
        if (EqualsIgnoreCase(e->name, "month")) return Value::Int(DateMonth(d));
        return Value::Int(DateDay(d));
      }
      return Status::NotSupported("scalar function '" + e->name + "'");
    }

    case Expr::Kind::kAggregate:
      return Status::Internal("aggregate reached the scalar evaluator");

    case Expr::Kind::kIsNull: {
      SUMTAB_ASSIGN_OR_RETURN(Value v, Eval(e->children[0], ctx));
      bool isnull = v.is_null();
      return Value::Bool(e->is_null_negated ? !isnull : isnull);
    }
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<bool> EvalPredicate(const ExprPtr& e, const EvalContext& ctx) {
  SUMTAB_ASSIGN_OR_RETURN(Value v, Eval(e, ctx));
  if (v.is_null()) return false;
  if (v.kind() != Value::Kind::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to boolean");
  }
  return v.AsBool();
}

}  // namespace expr
}  // namespace sumtab
