// Vectorized expression evaluation: each operator computes over a whole
// batch (or a morsel-sized row range of one) instead of a per-row tree walk.
// Semantics are bit-identical to the scalar Eval in expr_eval.h — the same
// three-valued logic, NULL propagation before type checks, division by
// zero -> NULL, sticky int/double arithmetic promotion — machine-checked by
// the differential oracle's columnar leg. The mixed-kind fallback literally
// calls the scalar EvalBinaryScalar core, so the two paths share one
// definition of every operator.
//
// Fast paths run tight typed loops (int64/double/bool payloads, no Value
// construction); columns whose tag is kVariant, string comparisons against
// heterogeneous operands, and rare operators fall back to a per-row loop
// that still walks the expression tree only once per batch.
#ifndef SUMTAB_EXPR_EXPR_VEC_EVAL_H_
#define SUMTAB_EXPR_EXPR_VEC_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/column_vector.h"
#include "expr/expr.h"

namespace sumtab {
namespace expr {

/// Evaluation context: the combined batch of a box (child columns
/// concatenated, offsets[q] = first slot of quantifier q, exactly as the
/// scalar EvalContext lays out its combined row) plus the [begin, end) row
/// range to evaluate — one morsel = one range.
struct VecEvalContext {
  const std::vector<int>* offsets = nullptr;
  const engine::Batch* batch = nullptr;
  int64_t begin = 0;
  int64_t end = 0;  // exclusive

  int64_t NumRows() const { return end - begin; }
};

/// Evaluates e over every row of the range; returns a column of
/// ctx.NumRows() values. Row i of the result equals the scalar
/// Eval(e, row begin+i) bit-for-bit; an error any scalar evaluation would
/// raise is raised here too (possibly attributed to a different row — the
/// whole statement fails either way).
StatusOr<engine::ColumnVector> EvalVec(const ExprPtr& e,
                                       const VecEvalContext& ctx);

/// Evaluates a predicate over the range into mask (resized to
/// ctx.NumRows()): mask[i] = 1 iff the row passes (BOOL true; NULL and
/// false both reject, as in the scalar EvalPredicate).
Status EvalPredicateVec(const ExprPtr& e, const VecEvalContext& ctx,
                        std::vector<uint8_t>* mask);

}  // namespace expr
}  // namespace sumtab

#endif  // SUMTAB_EXPR_EXPR_VEC_EVAL_H_
