// Expression pretty-printing. Column references print as "q<N>.<M>" unless a
// resolver supplies names (the QGM printer and the SQL emitter do).
#ifndef SUMTAB_EXPR_EXPR_PRINT_H_
#define SUMTAB_EXPR_EXPR_PRINT_H_

#include <functional>
#include <string>

#include "expr/expr.h"

namespace sumtab {
namespace expr {

/// Maps a leaf reference node to its display text; return empty to fall back
/// to the index-based default.
using RefPrinter = std::function<std::string(const Expr&)>;

std::string ToString(const ExprPtr& e);
std::string ToString(const ExprPtr& e, const RefPrinter& refs);

}  // namespace expr
}  // namespace sumtab

#endif  // SUMTAB_EXPR_EXPR_PRINT_H_
