#include "expr/expr_vec_eval.h"

#include "common/date.h"
#include "common/str_util.h"
#include "expr/expr_eval.h"

namespace sumtab {
namespace expr {

namespace {

using engine::ColumnVector;
using Tag = ColumnVector::Tag;

/// An evaluated operand: a constant (literals, folded subtrees), a borrowed
/// view into the context batch (column refs — zero-copy), or an owned
/// column computed by a child operator.
struct VecVal {
  bool is_const = false;
  Value const_val;
  const ColumnVector* borrowed = nullptr;
  int64_t offset = 0;  // with borrowed: first row of the morsel range
  ColumnVector owned;

  const ColumnVector& vec() const { return borrowed ? *borrowed : owned; }
  int64_t off() const { return borrowed ? offset : 0; }
  Tag tag() const { return vec().tag(); }
  /// Materializes row i (generic fallback paths only).
  Value At(int64_t i) const {
    return is_const ? const_val : vec().ValueAt(off() + i);
  }
};

VecVal Const(Value v) {
  VecVal out;
  out.is_const = true;
  out.const_val = std::move(v);
  return out;
}

VecVal Owned(ColumnVector col) {
  VecVal out;
  out.owned = std::move(col);
  return out;
}

bool ConstNull(const VecVal& v) { return v.is_const && v.const_val.is_null(); }

/// Operand usable by the double fast path (scalar arithmetic would take its
/// numeric branch for every non-null row).
bool NumericOperand(const VecVal& v) {
  return v.is_const ? v.const_val.IsNumeric() : v.vec().IsNumericTag();
}

/// Operand that is Kind::kInt for every non-null row (the scalar BothInts
/// test) — dates/bools are numeric but NOT int here, exactly as in EvalArith.
bool IntOperand(const VecVal& v) {
  return v.is_const ? v.const_val.kind() == Value::Kind::kInt
                    : v.tag() == Tag::kInt;
}

bool StringOperand(const VecVal& v) {
  return v.is_const ? v.const_val.kind() == Value::Kind::kString
                    : v.tag() == Tag::kString;
}

/// Double view of a numeric operand: constant, direct payload pointer, or a
/// once-converted buffer (int/date/bool widening matches Value::ToDouble).
struct DSpan {
  bool is_const = false;
  double cval = 0;
  std::vector<double> buf;
  const double* data = nullptr;
  const uint8_t* nulls = nullptr;

  double Get(int64_t i) const { return is_const ? cval : data[i]; }
  bool Null(int64_t i) const { return is_const ? false : nulls[i] != 0; }
};

DSpan MakeDSpan(const VecVal& v, int64_t n) {
  DSpan span;
  if (v.is_const) {
    span.is_const = true;
    span.cval = v.const_val.ToDouble();
    return span;
  }
  const ColumnVector& col = v.vec();
  const int64_t off = v.off();
  span.nulls = col.nulls().data() + off;
  if (col.tag() == Tag::kDouble) {
    span.data = col.doubles().data() + off;
    return span;
  }
  span.buf.resize(n);
  switch (col.tag()) {
    case Tag::kInt:
      for (int64_t i = 0; i < n; ++i) {
        span.buf[i] = static_cast<double>(col.ints()[off + i]);
      }
      break;
    case Tag::kDate:
      for (int64_t i = 0; i < n; ++i) {
        span.buf[i] = static_cast<double>(col.dates()[off + i]);
      }
      break;
    case Tag::kBool:
      for (int64_t i = 0; i < n; ++i) {
        span.buf[i] = col.bools()[off + i] != 0 ? 1.0 : 0.0;
      }
      break;
    default:
      break;  // excluded by NumericOperand
  }
  span.data = span.buf.data();
  return span;
}

/// Int64 view of a Kind::kInt operand.
struct ISpan {
  bool is_const = false;
  int64_t cval = 0;
  const int64_t* data = nullptr;
  const uint8_t* nulls = nullptr;

  int64_t Get(int64_t i) const { return is_const ? cval : data[i]; }
  bool Null(int64_t i) const { return is_const ? false : nulls[i] != 0; }
};

ISpan MakeISpan(const VecVal& v) {
  ISpan span;
  if (v.is_const) {
    span.is_const = true;
    span.cval = v.const_val.AsInt();
    return span;
  }
  span.data = v.vec().ints().data() + v.off();
  span.nulls = v.vec().nulls().data() + v.off();
  return span;
}

/// Scalar unary semantics, shared by const folding and the generic loop
/// (mirrors the kUnary case of the scalar Eval).
StatusOr<Value> ScalarUnary(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNeg) {
    if (v.kind() == Value::Kind::kInt) return Value::Int(-v.AsInt());
    if (v.IsNumeric()) return Value::Double(-v.ToDouble());
    return Status::InvalidArgument("negation of non-numeric value");
  }
  if (v.kind() != Value::Kind::kBool) {
    return Status::InvalidArgument("NOT on non-boolean value");
  }
  return Value::Bool(!v.AsBool());
}

/// Scalar year/month/day semantics (mirrors the kFunction case of Eval).
StatusOr<Value> ScalarDatePart(const std::string& name, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.kind() != Value::Kind::kDate) {
    return Status::InvalidArgument(name + "() requires a DATE");
  }
  int32_t d = v.AsDate();
  if (EqualsIgnoreCase(name, "year")) return Value::Int(DateYear(d));
  if (EqualsIgnoreCase(name, "month")) return Value::Int(DateMonth(d));
  return Value::Int(DateDay(d));
}

/// All-NULL result column (constant-NULL operand short-circuit: scalar
/// binary ops return NULL before any type checking).
ColumnVector AllNulls(int64_t n) {
  ColumnVector out;
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) out.AppendNull();
  return out;
}

bool ApplyComparison(BinaryOp op, bool eq, bool lt) {
  switch (op) {
    case BinaryOp::kEq:
      return eq;
    case BinaryOp::kNe:
      return !eq;
    case BinaryOp::kLt:
      return lt;
    case BinaryOp::kLe:
      return lt || eq;
    case BinaryOp::kGt:
      return !lt && !eq;
    default:  // kGe
      return !lt;
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

StatusOr<VecVal> EvalInternal(const ExprPtr& e, const VecEvalContext& ctx);

/// 3VL truth span: out[i] in {-1 (NULL), 0 (false), 1 (true)}.
Status TruthSpan(const VecVal& v, int64_t n, std::vector<int8_t>* out) {
  out->resize(n);
  if (v.is_const) {
    int8_t t;
    if (v.const_val.is_null()) {
      t = -1;
    } else if (v.const_val.kind() == Value::Kind::kBool) {
      t = v.const_val.AsBool() ? 1 : 0;
    } else {
      return Status::InvalidArgument("AND/OR on non-boolean value");
    }
    for (int64_t i = 0; i < n; ++i) (*out)[i] = t;
    return Status::OK();
  }
  const ColumnVector& col = v.vec();
  const int64_t off = v.off();
  if (col.tag() == Tag::kBool) {
    for (int64_t i = 0; i < n; ++i) {
      (*out)[i] = col.IsNull(off + i) ? -1 : (col.bools()[off + i] ? 1 : 0);
    }
    return Status::OK();
  }
  for (int64_t i = 0; i < n; ++i) {
    if (col.IsNull(off + i)) {
      (*out)[i] = -1;
      continue;
    }
    if (col.tag() == Tag::kVariant &&
        col.VariantAt(off + i).kind() == Value::Kind::kBool) {
      (*out)[i] = col.VariantAt(off + i).AsBool() ? 1 : 0;
      continue;
    }
    return Status::InvalidArgument("AND/OR on non-boolean value");
  }
  return Status::OK();
}

StatusOr<VecVal> EvalAndOr(const ExprPtr& e, const VecEvalContext& ctx) {
  SUMTAB_ASSIGN_OR_RETURN(VecVal l, EvalInternal(e->children[0], ctx));
  SUMTAB_ASSIGN_OR_RETURN(VecVal r, EvalInternal(e->children[1], ctx));
  const int64_t n = ctx.NumRows();
  std::vector<int8_t> a, b;
  SUMTAB_RETURN_NOT_OK(TruthSpan(l, n, &a));
  SUMTAB_RETURN_NOT_OK(TruthSpan(r, n, &b));
  ColumnVector out(Tag::kBool);
  out.Reserve(n);
  const bool is_and = e->binary_op == BinaryOp::kAnd;
  for (int64_t i = 0; i < n; ++i) {
    int8_t x = a[i];
    int8_t y = b[i];
    if (is_and) {
      if (x == 0 || y == 0) {
        out.AppendBool(false);
      } else if (x == -1 || y == -1) {
        out.AppendNull();
      } else {
        out.AppendBool(true);
      }
    } else {
      if (x == 1 || y == 1) {
        out.AppendBool(true);
      } else if (x == -1 || y == -1) {
        out.AppendNull();
      } else {
        out.AppendBool(false);
      }
    }
  }
  return Owned(std::move(out));
}

StatusOr<VecVal> EvalBinary(const ExprPtr& e, const VecEvalContext& ctx) {
  const BinaryOp op = e->binary_op;
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) return EvalAndOr(e, ctx);
  SUMTAB_ASSIGN_OR_RETURN(VecVal l, EvalInternal(e->children[0], ctx));
  SUMTAB_ASSIGN_OR_RETURN(VecVal r, EvalInternal(e->children[1], ctx));
  const int64_t n = ctx.NumRows();

  // Constant folding: one scalar evaluation serves the whole range.
  if (l.is_const && r.is_const) {
    SUMTAB_ASSIGN_OR_RETURN(Value v,
                            EvalBinaryScalar(op, l.const_val, r.const_val));
    return Const(std::move(v));
  }
  // A constant NULL operand makes every row NULL before any type check.
  if (ConstNull(l) || ConstNull(r)) return Owned(AllNulls(n));

  if (IsComparison(op)) {
    if (StringOperand(l) && StringOperand(r)) {
      // Dictionary fast path: constant = / <> against a dictionary-encoded
      // column is one Find() per batch and then a pure code-compare loop (a
      // constant absent from the dictionary, code -1, equals no stored
      // string). Ordering comparisons still decode: codes are assigned in
      // arrival order, not collation order.
      if ((op == BinaryOp::kEq || op == BinaryOp::kNe) &&
          (l.is_const != r.is_const)) {
        const VecVal& cv = l.is_const ? l : r;
        const VecVal& colv = l.is_const ? r : l;
        if (colv.vec().dict_encoded()) {
          const ColumnVector& col = colv.vec();
          const int64_t off = colv.off();
          const int32_t code = col.dict()->Find(cv.const_val.AsString());
          const int32_t* codes = col.codes().data();
          const bool want_eq = op == BinaryOp::kEq;
          ColumnVector out(Tag::kBool);
          out.Reserve(n);
          for (int64_t i = 0; i < n; ++i) {
            if (col.IsNull(off + i)) {
              out.AppendNull();
            } else {
              out.AppendBool((codes[off + i] == code) == want_eq);
            }
          }
          return Owned(std::move(out));
        }
      }
      ColumnVector out(Tag::kBool);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        bool ln = l.is_const ? false : l.vec().IsNull(l.off() + i);
        bool rn = r.is_const ? false : r.vec().IsNull(r.off() + i);
        if (ln || rn) {
          out.AppendNull();
          continue;
        }
        const std::string& ls =
            l.is_const ? l.const_val.AsString() : l.vec().StringAt(l.off() + i);
        const std::string& rs =
            r.is_const ? r.const_val.AsString() : r.vec().StringAt(r.off() + i);
        int c = ls.compare(rs);
        out.AppendBool(ApplyComparison(op, c == 0, c < 0));
      }
      return Owned(std::move(out));
    }
    if (NumericOperand(l) && NumericOperand(r)) {
      DSpan a = MakeDSpan(l, n);
      DSpan b = MakeDSpan(r, n);
      ColumnVector out(Tag::kBool);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (a.Null(i) || b.Null(i)) {
          out.AppendNull();
          continue;
        }
        double x = a.Get(i);
        double y = b.Get(i);
        out.AppendBool(ApplyComparison(op, x == y, x < y));
      }
      return Owned(std::move(out));
    }
  } else if (op == BinaryOp::kAdd || op == BinaryOp::kSub ||
             op == BinaryOp::kMul) {
    if (IntOperand(l) && IntOperand(r)) {
      ISpan a = MakeISpan(l);
      ISpan b = MakeISpan(r);
      ColumnVector out(Tag::kInt);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (a.Null(i) || b.Null(i)) {
          out.AppendNull();
          continue;
        }
        int64_t x = a.Get(i);
        int64_t y = b.Get(i);
        out.AppendInt(op == BinaryOp::kAdd   ? x + y
                      : op == BinaryOp::kSub ? x - y
                                             : x * y);
      }
      return Owned(std::move(out));
    }
    if (NumericOperand(l) && NumericOperand(r)) {
      DSpan a = MakeDSpan(l, n);
      DSpan b = MakeDSpan(r, n);
      ColumnVector out(Tag::kDouble);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (a.Null(i) || b.Null(i)) {
          out.AppendNull();
          continue;
        }
        double x = a.Get(i);
        double y = b.Get(i);
        out.AppendDouble(op == BinaryOp::kAdd   ? x + y
                         : op == BinaryOp::kSub ? x - y
                                                : x * y);
      }
      return Owned(std::move(out));
    }
  } else if (op == BinaryOp::kDiv) {
    if (NumericOperand(l) && NumericOperand(r)) {
      DSpan a = MakeDSpan(l, n);
      DSpan b = MakeDSpan(r, n);
      ColumnVector out(Tag::kDouble);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (a.Null(i) || b.Null(i)) {
          out.AppendNull();
          continue;
        }
        double d = b.Get(i);
        if (d == 0.0) {
          out.AppendNull();  // division by zero yields NULL, same as scalar
        } else {
          out.AppendDouble(a.Get(i) / d);
        }
      }
      return Owned(std::move(out));
    }
  } else if (op == BinaryOp::kMod) {
    if (IntOperand(l) && IntOperand(r)) {
      ISpan a = MakeISpan(l);
      ISpan b = MakeISpan(r);
      ColumnVector out(Tag::kInt);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (a.Null(i) || b.Null(i)) {
          out.AppendNull();
          continue;
        }
        int64_t d = b.Get(i);
        if (d == 0) {
          out.AppendNull();
        } else {
          out.AppendInt(a.Get(i) % d);
        }
      }
      return Owned(std::move(out));
    }
  }

  // Mixed-kind fallback: per-row through the scalar binary core (identical
  // semantics by construction, including error cases).
  ColumnVector out;
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    SUMTAB_ASSIGN_OR_RETURN(Value v, EvalBinaryScalar(op, l.At(i), r.At(i)));
    out.AppendValue(v);
  }
  return Owned(std::move(out));
}

StatusOr<VecVal> EvalInternal(const ExprPtr& e, const VecEvalContext& ctx) {
  const int64_t n = ctx.NumRows();
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      return Const(e->literal);

    case Expr::Kind::kColumnRef: {
      VecVal out;
      out.borrowed =
          &ctx.batch->columns[(*ctx.offsets)[e->quantifier] + e->column];
      out.offset = ctx.begin;
      return out;
    }

    case Expr::Kind::kRejoinRef:
      return Status::Internal("rejoin reference escaped the matcher");

    case Expr::Kind::kColumnName:
      return Status::Internal("unresolved column '" + e->name +
                              "' reached the evaluator");

    case Expr::Kind::kScalarSubquery:
      return Status::Internal(
          "scalar subquery reached the evaluator (QGM builder should have "
          "converted it)");

    case Expr::Kind::kUnary: {
      SUMTAB_ASSIGN_OR_RETURN(VecVal child, EvalInternal(e->children[0], ctx));
      if (child.is_const) {
        SUMTAB_ASSIGN_OR_RETURN(Value v,
                                ScalarUnary(e->unary_op, child.const_val));
        return Const(std::move(v));
      }
      const ColumnVector& col = child.vec();
      const int64_t off = child.off();
      if (e->unary_op == UnaryOp::kNeg && col.tag() == Tag::kInt) {
        ColumnVector out(Tag::kInt);
        out.Reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          if (col.IsNull(off + i)) {
            out.AppendNull();
          } else {
            out.AppendInt(-col.ints()[off + i]);
          }
        }
        return Owned(std::move(out));
      }
      if (e->unary_op == UnaryOp::kNeg && col.IsNumericTag()) {
        ColumnVector out(Tag::kDouble);
        out.Reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          if (col.IsNull(off + i)) {
            out.AppendNull();
          } else {
            out.AppendDouble(-col.NumericAt(off + i));
          }
        }
        return Owned(std::move(out));
      }
      if (e->unary_op == UnaryOp::kNot && col.tag() == Tag::kBool) {
        ColumnVector out(Tag::kBool);
        out.Reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          if (col.IsNull(off + i)) {
            out.AppendNull();
          } else {
            out.AppendBool(col.bools()[off + i] == 0);
          }
        }
        return Owned(std::move(out));
      }
      ColumnVector out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        SUMTAB_ASSIGN_OR_RETURN(Value v,
                                ScalarUnary(e->unary_op, child.At(i)));
        out.AppendValue(v);
      }
      return Owned(std::move(out));
    }

    case Expr::Kind::kBinary:
      return EvalBinary(e, ctx);

    case Expr::Kind::kFunction: {
      if (e->children.size() == 1 &&
          (EqualsIgnoreCase(e->name, "year") ||
           EqualsIgnoreCase(e->name, "month") ||
           EqualsIgnoreCase(e->name, "day"))) {
        SUMTAB_ASSIGN_OR_RETURN(VecVal child,
                                EvalInternal(e->children[0], ctx));
        if (child.is_const) {
          SUMTAB_ASSIGN_OR_RETURN(Value v,
                                  ScalarDatePart(e->name, child.const_val));
          return Const(std::move(v));
        }
        const ColumnVector& col = child.vec();
        const int64_t off = child.off();
        if (col.tag() == Tag::kDate) {
          const bool is_year = EqualsIgnoreCase(e->name, "year");
          const bool is_month = EqualsIgnoreCase(e->name, "month");
          ColumnVector out(Tag::kInt);
          out.Reserve(n);
          for (int64_t i = 0; i < n; ++i) {
            if (col.IsNull(off + i)) {
              out.AppendNull();
              continue;
            }
            int32_t d = col.dates()[off + i];
            out.AppendInt(is_year ? DateYear(d)
                                  : is_month ? DateMonth(d) : DateDay(d));
          }
          return Owned(std::move(out));
        }
        ColumnVector out;
        out.Reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          SUMTAB_ASSIGN_OR_RETURN(Value v,
                                  ScalarDatePart(e->name, child.At(i)));
          out.AppendValue(v);
        }
        return Owned(std::move(out));
      }
      return Status::NotSupported("scalar function '" + e->name + "'");
    }

    case Expr::Kind::kAggregate:
      return Status::Internal("aggregate reached the vectorized evaluator");

    case Expr::Kind::kIsNull: {
      SUMTAB_ASSIGN_OR_RETURN(VecVal child, EvalInternal(e->children[0], ctx));
      if (child.is_const) {
        bool isnull = child.const_val.is_null();
        return Const(Value::Bool(e->is_null_negated ? !isnull : isnull));
      }
      const ColumnVector& col = child.vec();
      const int64_t off = child.off();
      ColumnVector out(Tag::kBool);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        bool isnull = col.IsNull(off + i);
        out.AppendBool(e->is_null_negated ? !isnull : isnull);
      }
      return Owned(std::move(out));
    }
  }
  return Status::Internal("unhandled expression kind");
}

/// Materializes a VecVal into an owned column of n rows.
ColumnVector Materialize(VecVal val, int64_t n) {
  if (val.is_const) {
    ColumnVector out;
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) out.AppendValue(val.const_val);
    return out;
  }
  if (val.borrowed != nullptr) {
    return ColumnVector::Slice(*val.borrowed, val.offset, n);
  }
  return std::move(val.owned);
}

}  // namespace

StatusOr<ColumnVector> EvalVec(const ExprPtr& e, const VecEvalContext& ctx) {
  const int64_t n = ctx.NumRows();
  // An empty range evaluates nothing — the scalar path would never run the
  // expression either, so no data-dependent error can surface here.
  if (n <= 0) return ColumnVector();
  SUMTAB_ASSIGN_OR_RETURN(VecVal val, EvalInternal(e, ctx));
  return Materialize(std::move(val), n);
}

Status EvalPredicateVec(const ExprPtr& e, const VecEvalContext& ctx,
                        std::vector<uint8_t>* mask) {
  const int64_t n = ctx.NumRows();
  mask->assign(n, 0);
  if (n <= 0) return Status::OK();
  SUMTAB_ASSIGN_OR_RETURN(VecVal val, EvalInternal(e, ctx));
  if (val.is_const) {
    if (val.const_val.is_null()) return Status::OK();
    if (val.const_val.kind() != Value::Kind::kBool) {
      return Status::InvalidArgument("predicate did not evaluate to boolean");
    }
    if (val.const_val.AsBool()) mask->assign(n, 1);
    return Status::OK();
  }
  const ColumnVector& col = val.vec();
  const int64_t off = val.off();
  if (col.tag() == Tag::kBool) {
    for (int64_t i = 0; i < n; ++i) {
      (*mask)[i] = !col.IsNull(off + i) && col.bools()[off + i] != 0;
    }
    return Status::OK();
  }
  for (int64_t i = 0; i < n; ++i) {
    if (col.IsNull(off + i)) continue;  // NULL rejects the row, no error
    if (col.tag() == Tag::kVariant &&
        col.VariantAt(off + i).kind() == Value::Kind::kBool) {
      (*mask)[i] = col.VariantAt(off + i).AsBool() ? 1 : 0;
      continue;
    }
    return Status::InvalidArgument("predicate did not evaluate to boolean");
  }
  return Status::OK();
}

}  // namespace expr
}  // namespace sumtab
