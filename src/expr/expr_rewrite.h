// Small expression rewrites used by the QGM builder and the matcher.
#ifndef SUMTAB_EXPR_EXPR_REWRITE_H_
#define SUMTAB_EXPR_EXPR_REWRITE_H_

#include <functional>

#include "expr/expr.h"

namespace sumtab {
namespace expr {

/// Remaps every kColumnRef through fn(quantifier, column) -> replacement expr.
/// Other leaves (incl. kRejoinRef) pass through unchanged.
ExprPtr MapColumnRefs(const ExprPtr& e,
                      const std::function<ExprPtr(int, int)>& fn);

/// Remaps every kRejoinRef through fn(rejoin_idx, column) -> replacement.
ExprPtr MapRejoinRefs(const ExprPtr& e,
                      const std::function<ExprPtr(int, int)>& fn);

/// Folds literal-only arithmetic/comparison subtrees bottom-up.
ExprPtr FoldConstants(const ExprPtr& e);

/// True if e is exactly ColumnRef{quantifier, column} for some column;
/// *column receives it.
bool IsSimpleColumnRef(const ExprPtr& e, int quantifier, int* column);

/// True if e references only the given quantifier (or no quantifier at all,
/// when allow_constants). kRejoinRef nodes make this false.
bool RefersOnlyToQuantifier(const ExprPtr& e, int quantifier);

}  // namespace expr
}  // namespace sumtab

#endif  // SUMTAB_EXPR_EXPR_REWRITE_H_
