#include "expr/expr.h"

#include <functional>

namespace sumtab {
namespace expr {

namespace {

std::shared_ptr<Expr> NewNode(Expr::Kind kind) {
  auto node = std::make_shared<Expr>();
  node->kind = kind;
  return node;
}

}  // namespace

ExprPtr Lit(Value v) {
  auto node = NewNode(Expr::Kind::kLiteral);
  node->literal = std::move(v);
  return node;
}

ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }

ExprPtr ColName(std::string qualifier, std::string name) {
  auto node = NewNode(Expr::Kind::kColumnName);
  node->qualifier = std::move(qualifier);
  node->name = std::move(name);
  return node;
}

ExprPtr ColRef(int quantifier, int column) {
  auto node = NewNode(Expr::Kind::kColumnRef);
  node->quantifier = quantifier;
  node->column = column;
  return node;
}

ExprPtr RejoinRef(int rejoin_idx, int column) {
  auto node = NewNode(Expr::Kind::kRejoinRef);
  node->quantifier = rejoin_idx;
  node->column = column;
  return node;
}

ExprPtr Unary(UnaryOp op, ExprPtr child) {
  auto node = NewNode(Expr::Kind::kUnary);
  node->unary_op = op;
  node->children.push_back(std::move(child));
  return node;
}

ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto node = NewNode(Expr::Kind::kBinary);
  node->binary_op = op;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

ExprPtr Function(std::string name, std::vector<ExprPtr> args) {
  auto node = NewNode(Expr::Kind::kFunction);
  node->name = std::move(name);
  node->children = std::move(args);
  return node;
}

ExprPtr Aggregate(AggFunc func, ExprPtr arg, bool distinct) {
  auto node = NewNode(Expr::Kind::kAggregate);
  node->agg = func;
  node->agg_distinct = distinct;
  if (arg != nullptr) node->children.push_back(std::move(arg));
  return node;
}

ExprPtr CountStar() {
  auto node = NewNode(Expr::Kind::kAggregate);
  node->agg = AggFunc::kCount;
  node->agg_star = true;
  return node;
}

ExprPtr IsNull(ExprPtr child, bool negated) {
  auto node = NewNode(Expr::Kind::kIsNull);
  node->is_null_negated = negated;
  node->children.push_back(std::move(child));
  return node;
}

ExprPtr ScalarSubquery(std::shared_ptr<sql::SelectStmt> stmt) {
  auto node = NewNode(Expr::Kind::kScalarSubquery);
  node->subquery = std::move(stmt);
  return node;
}

ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Lit(Value::Bool(true));
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Binary(BinaryOp::kAnd, acc, conjuncts[i]);
  }
  return acc;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

bool Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Expr::Kind::kLiteral:
      if (!(a->literal == b->literal)) return false;
      // Distinguish NULL kinds vs values handled by Value::operator==.
      break;
    case Expr::Kind::kColumnName:
      if (a->qualifier != b->qualifier || a->name != b->name) return false;
      break;
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kRejoinRef:
      if (a->quantifier != b->quantifier || a->column != b->column)
        return false;
      break;
    case Expr::Kind::kUnary:
      if (a->unary_op != b->unary_op) return false;
      break;
    case Expr::Kind::kBinary:
      if (a->binary_op != b->binary_op) return false;
      break;
    case Expr::Kind::kFunction:
      if (a->name != b->name) return false;
      break;
    case Expr::Kind::kAggregate:
      if (a->agg != b->agg || a->agg_distinct != b->agg_distinct ||
          a->agg_star != b->agg_star)
        return false;
      break;
    case Expr::Kind::kIsNull:
      if (a->is_null_negated != b->is_null_negated) return false;
      break;
    case Expr::Kind::kScalarSubquery:
      // Subqueries compare by object identity; the QGM builder removes them
      // before any matching-related comparison happens.
      if (a->subquery != b->subquery) return false;
      break;
  }
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!Equal(a->children[i], b->children[i])) return false;
  }
  return true;
}

size_t HashExpr(const ExprPtr& e) {
  if (e == nullptr) return 0;
  size_t h = static_cast<size_t>(e->kind) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      mix(e->literal.Hash());
      break;
    case Expr::Kind::kColumnName:
      mix(std::hash<std::string>{}(e->qualifier));
      mix(std::hash<std::string>{}(e->name));
      break;
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kRejoinRef:
      mix(static_cast<size_t>(e->quantifier));
      mix(static_cast<size_t>(e->column) * 1315423911u);
      break;
    case Expr::Kind::kUnary:
      mix(static_cast<size_t>(e->unary_op));
      break;
    case Expr::Kind::kBinary:
      mix(static_cast<size_t>(e->binary_op));
      break;
    case Expr::Kind::kFunction:
      mix(std::hash<std::string>{}(e->name));
      break;
    case Expr::Kind::kAggregate:
      mix(static_cast<size_t>(e->agg));
      mix(e->agg_distinct ? 17 : 3);
      mix(e->agg_star ? 23 : 5);
      break;
    case Expr::Kind::kIsNull:
      mix(e->is_null_negated ? 31 : 7);
      break;
    case Expr::Kind::kScalarSubquery:
      mix(std::hash<const void*>{}(e->subquery.get()));
      break;
  }
  for (const ExprPtr& child : e->children) mix(HashExpr(child));
  return h;
}

void Visit(const ExprPtr& e, const std::function<void(const Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  for (const ExprPtr& child : e->children) Visit(child, fn);
}

ExprPtr RewriteLeaves(const ExprPtr& e,
                      const std::function<ExprPtr(const ExprPtr&)>& fn) {
  if (e == nullptr) return nullptr;
  switch (e->kind) {
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kRejoinRef:
    case Expr::Kind::kColumnName:
    case Expr::Kind::kScalarSubquery: {
      ExprPtr replacement = fn(e);
      return replacement != nullptr ? replacement : e;
    }
    default:
      break;
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(e->children.size());
  for (const ExprPtr& child : e->children) {
    ExprPtr rewritten = RewriteLeaves(child, fn);
    changed = changed || rewritten != child;
    new_children.push_back(std::move(rewritten));
  }
  if (!changed) return e;
  auto node = std::make_shared<Expr>(*e);
  node->children = std::move(new_children);
  return node;
}

bool Any(const ExprPtr& e, const std::function<bool(const Expr&)>& pred) {
  if (e == nullptr) return false;
  if (pred(*e)) return true;
  for (const ExprPtr& child : e->children) {
    if (Any(child, pred)) return true;
  }
  return false;
}

bool ContainsAggregate(const ExprPtr& e) {
  return Any(e, [](const Expr& node) {
    return node.kind == Expr::Kind::kAggregate;
  });
}

void CollectQuantifiers(const ExprPtr& e, std::vector<int>* out) {
  Visit(e, [out](const Expr& node) {
    if (node.kind == Expr::Kind::kColumnRef) {
      for (int q : *out) {
        if (q == node.quantifier) return;
      }
      out->push_back(node.quantifier);
    }
  });
}

bool IsCommutative(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kMul:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

}  // namespace expr
}  // namespace sumtab
