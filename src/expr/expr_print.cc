#include "expr/expr_print.h"

#include "common/str_util.h"

namespace sumtab {
namespace expr {

namespace {

// Precedence for parenthesization (higher binds tighter).
int Precedence(const Expr& e) {
  if (e.kind != Expr::Kind::kBinary) return 100;
  switch (e.binary_op) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return 5;
  }
  return 100;
}

std::string Print(const ExprPtr& e, const RefPrinter& refs, int parent_prec) {
  std::string out;
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      if (e->literal.kind() == Value::Kind::kString) {
        out = "'" + e->literal.AsString() + "'";
      } else if (e->literal.kind() == Value::Kind::kDate) {
        out = "date '" + e->literal.ToString() + "'";
      } else {
        out = e->literal.ToString();
      }
      break;
    case Expr::Kind::kColumnName:
      out = e->qualifier.empty() ? e->name : e->qualifier + "." + e->name;
      break;
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kRejoinRef: {
      if (refs) {
        std::string named = refs(*e);
        if (!named.empty()) {
          out = named;
          break;
        }
      }
      const char* tag = e->kind == Expr::Kind::kRejoinRef ? "rj" : "q";
      out = std::string(tag) + std::to_string(e->quantifier) + "." +
            std::to_string(e->column);
      break;
    }
    case Expr::Kind::kUnary: {
      std::string inner = Print(e->children[0], refs, 99);
      out = (e->unary_op == UnaryOp::kNeg ? "-" : "NOT ") + inner;
      break;
    }
    case Expr::Kind::kBinary: {
      int prec = Precedence(*e);
      std::string l = Print(e->children[0], refs, prec);
      std::string r = Print(e->children[1], refs, prec + 1);
      out = l + " " + BinaryOpName(e->binary_op) + " " + r;
      if (prec < parent_prec) out = "(" + out + ")";
      break;
    }
    case Expr::Kind::kFunction: {
      std::vector<std::string> args;
      for (const ExprPtr& child : e->children) {
        args.push_back(Print(child, refs, 0));
      }
      out = e->name + "(" + Join(args, ", ") + ")";
      break;
    }
    case Expr::Kind::kAggregate: {
      std::string arg;
      if (e->agg_star) {
        arg = "*";
      } else {
        arg = Print(e->children[0], refs, 0);
        if (e->agg_distinct) arg = "distinct " + arg;
      }
      out = std::string(AggFuncName(e->agg)) + "(" + arg + ")";
      break;
    }
    case Expr::Kind::kIsNull: {
      std::string inner = Print(e->children[0], refs, 99);
      out = inner + (e->is_null_negated ? " is not null" : " is null");
      if (3 < parent_prec) out = "(" + out + ")";
      break;
    }
    case Expr::Kind::kScalarSubquery:
      out = "(<subquery>)";
      break;
  }
  return out;
}

}  // namespace

std::string ToString(const ExprPtr& e) { return Print(e, nullptr, 0); }

std::string ToString(const ExprPtr& e, const RefPrinter& refs) {
  return Print(e, refs, 0);
}

}  // namespace expr
}  // namespace sumtab
