#include "expr/expr_rewrite.h"

#include "expr/expr_eval.h"

namespace sumtab {
namespace expr {

ExprPtr MapColumnRefs(const ExprPtr& e,
                      const std::function<ExprPtr(int, int)>& fn) {
  return RewriteLeaves(e, [&fn](const ExprPtr& leaf) -> ExprPtr {
    if (leaf->kind != Expr::Kind::kColumnRef) return nullptr;
    return fn(leaf->quantifier, leaf->column);
  });
}

ExprPtr MapRejoinRefs(const ExprPtr& e,
                      const std::function<ExprPtr(int, int)>& fn) {
  return RewriteLeaves(e, [&fn](const ExprPtr& leaf) -> ExprPtr {
    if (leaf->kind != Expr::Kind::kRejoinRef) return nullptr;
    return fn(leaf->quantifier, leaf->column);
  });
}

ExprPtr FoldConstants(const ExprPtr& e) {
  if (e == nullptr) return nullptr;
  if (e->children.empty()) return e;
  bool changed = false;
  bool all_literal = true;
  std::vector<ExprPtr> folded;
  folded.reserve(e->children.size());
  for (const ExprPtr& child : e->children) {
    ExprPtr f = FoldConstants(child);
    changed = changed || f != child;
    all_literal = all_literal && f->kind == Expr::Kind::kLiteral;
    folded.push_back(std::move(f));
  }
  ExprPtr node = e;
  if (changed) {
    auto copy = std::make_shared<Expr>(*e);
    copy->children = folded;
    node = copy;
  }
  // Only pure scalar operators fold; aggregates and subqueries never do.
  if (all_literal && (node->kind == Expr::Kind::kUnary ||
                      node->kind == Expr::Kind::kBinary ||
                      node->kind == Expr::Kind::kFunction ||
                      node->kind == Expr::Kind::kIsNull)) {
    EvalContext empty_ctx;
    StatusOr<Value> v = Eval(node, empty_ctx);
    if (v.ok()) return Lit(std::move(v).value());
  }
  return node;
}

bool IsSimpleColumnRef(const ExprPtr& e, int quantifier, int* column) {
  if (e->kind != Expr::Kind::kColumnRef || e->quantifier != quantifier) {
    return false;
  }
  if (column != nullptr) *column = e->column;
  return true;
}

bool RefersOnlyToQuantifier(const ExprPtr& e, int quantifier) {
  return !Any(e, [quantifier](const Expr& node) {
    if (node.kind == Expr::Kind::kRejoinRef) return true;
    return node.kind == Expr::Kind::kColumnRef &&
           node.quantifier != quantifier;
  });
}

}  // namespace expr
}  // namespace sumtab
