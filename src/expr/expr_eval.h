// Row-at-a-time expression evaluation with SQL three-valued logic (NULL is
// represented by Value::Null(); unknown truth values propagate as NULL).
// Aggregate nodes are not evaluable here — the engine's aggregator handles
// them; encountering one is an Internal error.
#ifndef SUMTAB_EXPR_EXPR_EVAL_H_
#define SUMTAB_EXPR_EXPR_EVAL_H_

#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "expr/expr.h"

namespace sumtab {
namespace expr {

/// Evaluation context: a combined tuple laid out as the concatenation of the
/// child rows of a box, with offsets[q] giving the first slot of quantifier q.
struct EvalContext {
  const std::vector<int>* offsets = nullptr;
  const Row* row = nullptr;

  const Value& ColumnValue(int quantifier, int column) const {
    return (*row)[(*offsets)[quantifier] + column];
  }
};

/// Evaluates e against ctx. Division by zero yields NULL (keeps aggregate
/// pipelines total); type mismatches yield InvalidArgument.
StatusOr<Value> Eval(const ExprPtr& e, const EvalContext& ctx);

/// Evaluates a predicate: true only if Eval returns BOOL true (NULL and false
/// both reject the row).
StatusOr<bool> EvalPredicate(const ExprPtr& e, const EvalContext& ctx);

/// SQL comparison semantics on two non-null values for the given operator.
Value CompareValues(BinaryOp op, const Value& left, const Value& right);

/// One non-AND/OR binary operator applied to two already-evaluated operands:
/// NULL operands propagate NULL *before* any type checking (NULL + 'x' is
/// NULL, not an error), then comparisons go through CompareValues and
/// arithmetic through the shared arithmetic core (division by zero -> NULL).
/// Both the scalar tree-walker and the vectorized evaluator's mixed-kind
/// fallback call this, so their semantics cannot drift apart.
StatusOr<Value> EvalBinaryScalar(BinaryOp op, const Value& left,
                                 const Value& right);

}  // namespace expr
}  // namespace sumtab

#endif  // SUMTAB_EXPR_EXPR_EVAL_H_
