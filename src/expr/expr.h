// Expression trees. One representation serves two phases:
//  - parser output: column references are unresolved names (kColumnName),
//    scalar subqueries still hold their SQL AST (kScalarSubquery);
//  - QGM context: column references are resolved QNC references (kColumnRef:
//    quantifier index + column index within that quantifier's child box), and
//    scalar subqueries have been converted into quantifiers.
// During matching a third leaf appears: kRejoinRef, a reference to a rejoin
// child's output column (paper Sec. 4.1.1), kept distinct from subsumer QNCs.
//
// Nodes are immutable after construction and shared via shared_ptr, so
// rewrites build new spines over shared subtrees.
#ifndef SUMTAB_EXPR_EXPR_H_
#define SUMTAB_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace sumtab {

namespace sql {
struct SelectStmt;  // defined in sql/sql_ast.h
}  // namespace sql

namespace expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNeg, kNot };

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

/// A single expression node.
class Expr {
 public:
  enum class Kind {
    kLiteral,      // literal
    kColumnName,   // qualifier.name (unresolved; parser output only)
    kColumnRef,    // QNC: (quantifier, column)
    kRejoinRef,    // matching-internal: rejoin child (rejoin_idx, column)
    kUnary,        // op(child)
    kBinary,       // op(left, right)
    kFunction,     // scalar function: name(args...); builtins: year/month/day
    kAggregate,    // agg func over 0 or 1 argument
    kIsNull,       // [NOT] IS NULL
    kScalarSubquery,  // parser output only
  };

  Kind kind;

  // kLiteral
  Value literal;

  // kColumnName
  std::string qualifier;  // table alias; empty if unqualified
  std::string name;       // column name; also function name for kFunction

  // kColumnRef / kRejoinRef
  int quantifier = -1;  // quantifier index (or rejoin index)
  int column = -1;      // column index within that child's outputs

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kAggregate
  AggFunc agg = AggFunc::kCount;
  bool agg_distinct = false;
  bool agg_star = false;  // COUNT(*)

  // kIsNull
  bool is_null_negated = false;  // IS NOT NULL

  // kScalarSubquery
  std::shared_ptr<sql::SelectStmt> subquery;

  std::vector<ExprPtr> children;
};

// ---- Factory helpers ----
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr ColName(std::string qualifier, std::string name);
ExprPtr ColRef(int quantifier, int column);
ExprPtr RejoinRef(int rejoin_idx, int column);
ExprPtr Unary(UnaryOp op, ExprPtr child);
ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr Function(std::string name, std::vector<ExprPtr> args);
ExprPtr Aggregate(AggFunc func, ExprPtr arg, bool distinct);
ExprPtr CountStar();
ExprPtr IsNull(ExprPtr child, bool negated);
ExprPtr ScalarSubquery(std::shared_ptr<sql::SelectStmt> stmt);

/// Conjunction of conjuncts; returns TRUE literal when empty, the sole
/// element when singleton.
ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);

/// Splits a tree of ANDs into conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

// ---- Structural identity ----

/// Deep structural equality (column refs compare by indexes, literals by
/// value, commutativity NOT considered here — see matching/predicate_match).
bool Equal(const ExprPtr& a, const ExprPtr& b);

size_t HashExpr(const ExprPtr& e);

// ---- Traversal / rewriting ----

/// Applies fn to every node (pre-order).
void Visit(const ExprPtr& e, const std::function<void(const Expr&)>& fn);

/// Rewrites leaves: fn is called on kColumnRef / kRejoinRef / kColumnName /
/// kScalarSubquery nodes and may return a replacement (or nullptr to keep).
/// Interior nodes are rebuilt only when a child changed.
ExprPtr RewriteLeaves(const ExprPtr& e,
                      const std::function<ExprPtr(const ExprPtr&)>& fn);

/// True if any node satisfies pred.
bool Any(const ExprPtr& e, const std::function<bool(const Expr&)>& pred);

/// True if the expression contains an aggregate node.
bool ContainsAggregate(const ExprPtr& e);

/// Collects distinct quantifier indexes referenced by kColumnRef nodes
/// (ignores kRejoinRef).
void CollectQuantifiers(const ExprPtr& e, std::vector<int>* out);

/// True if op is commutative (+ * = <> AND OR).
bool IsCommutative(BinaryOp op);

/// For comparisons, the operator with operands swapped (a < b ≡ b > a);
/// returns op itself for commutative/non-comparison ops.
BinaryOp FlipComparison(BinaryOp op);

const char* BinaryOpName(BinaryOp op);   // symbol, e.g. "+", "<="
const char* AggFuncName(AggFunc func);   // lowercase, e.g. "count"

}  // namespace expr
}  // namespace sumtab

#endif  // SUMTAB_EXPR_EXPR_H_
