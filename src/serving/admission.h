// Admission control for the concurrent serving layer (DESIGN.md,
// "Concurrent serving: sessions, snapshots, admission").
//
// A fixed number of queries run at once; a bounded number more may wait, for
// a bounded time. Everything beyond that is rejected *before* it pins a
// snapshot or touches the planner — under overload the server sheds work at
// the door with a structured kResourceExhausted (RejectReason subcode
// admission_queue_full / admission_timeout) instead of letting every query
// get slower together.
#ifndef SUMTAB_SERVING_ADMISSION_H_
#define SUMTAB_SERVING_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"

namespace sumtab {
namespace serving {

struct AdmissionOptions {
  /// Queries allowed to run concurrently.
  int max_concurrent = 8;
  /// Queries allowed to wait for a slot; the next one is turned away
  /// immediately (admission_queue_full).
  int max_queued = 16;
  /// Longest a queued query waits before giving up (admission_timeout).
  double max_wait_millis = 200;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII slot: returning it (destruction) frees the slot and wakes one
  /// queued query. Move-only; a default-constructed Permit holds nothing.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept;
    ~Permit();
    bool holds_slot() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks up to max_wait_millis for a slot. Failure is always
  /// kResourceExhausted with a RejectReason subcode:
  ///   admission_queue_full — max_queued waiters already ahead;
  ///   admission_timeout    — waited max_wait_millis without a slot.
  /// Fault point "serving/admission" fires first (resilience tests inject
  /// synthetic rejects here).
  StatusOr<Permit> Admit();

  struct Stats {
    int64_t admitted = 0;
    int64_t rejected_queue_full = 0;
    int64_t rejected_timeout = 0;
    int in_flight = 0;  // slots held right now
    int queued = 0;     // waiting right now
  };
  Stats GetStats() const;

 private:
  void Release();

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int in_flight_ = 0;
  int queued_ = 0;
  int64_t admitted_ = 0;
  int64_t rejected_queue_full_ = 0;
  int64_t rejected_timeout_ = 0;
  // Registered once; increments are lock-free.
  Counter* admitted_counter_;
  Counter* reject_queue_full_counter_;
  Counter* reject_timeout_counter_;
  Histogram* wait_hist_;  // admission wait, microseconds
};

}  // namespace serving
}  // namespace sumtab

#endif  // SUMTAB_SERVING_ADMISSION_H_
