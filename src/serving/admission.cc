#include "serving/admission.h"

#include <chrono>

#include "common/fault_injection.h"
#include "common/reject_reason.h"
#include "common/trace.h"

namespace sumtab {
namespace serving {

namespace {

Status Reject(RejectReason reason, const std::string& detail) {
  return Status::ResourceExhausted(std::string("[") +
                                   RejectReasonToken(reason) + "] " + detail)
      .WithSubcode(static_cast<uint16_t>(reason));
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  admitted_counter_ = registry.counter("serving.admission.admitted");
  reject_queue_full_counter_ =
      registry.counter("serving.admission.rejected_queue_full");
  reject_timeout_counter_ =
      registry.counter("serving.admission.rejected_timeout");
  wait_hist_ = registry.histogram("serving.admission.wait");
}

AdmissionController::Permit& AdmissionController::Permit::operator=(
    Permit&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->Release();
    controller_ = other.controller_;
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionController::Permit::~Permit() {
  if (controller_ != nullptr) controller_->Release();
}

StatusOr<AdmissionController::Permit> AdmissionController::Admit() {
  // Resilience seam: tests arm this to exercise the reject path without
  // needing to saturate the server for real.
  SUMTAB_FAULT_POINT("serving/admission");

  int64_t wait_start = MonotonicNanos();
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ < options_.max_concurrent) {
    ++in_flight_;
    ++admitted_;
    admitted_counter_->Increment();
    wait_hist_->Record(0);
    return Permit(this);
  }
  if (queued_ >= options_.max_queued) {
    ++rejected_queue_full_;
    reject_queue_full_counter_->Increment();
    return Reject(RejectReason::kAdmissionQueueFull,
                  std::to_string(options_.max_queued) +
                      " queries already queued for admission");
  }
  ++queued_;
  bool got_slot = cv_.wait_for(
      lock,
      std::chrono::duration<double, std::milli>(options_.max_wait_millis),
      [this] { return in_flight_ < options_.max_concurrent; });
  --queued_;
  wait_hist_->Record((MonotonicNanos() - wait_start) / 1000);
  if (!got_slot) {
    ++rejected_timeout_;
    reject_timeout_counter_->Increment();
    return Reject(RejectReason::kAdmissionTimeout,
                  "no admission slot within " +
                      std::to_string(options_.max_wait_millis) + " ms");
  }
  ++in_flight_;
  ++admitted_;
  admitted_counter_->Increment();
  return Permit(this);
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  cv_.notify_one();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_;
  stats.rejected_queue_full = rejected_queue_full_;
  stats.rejected_timeout = rejected_timeout_;
  stats.in_flight = in_flight_;
  stats.queued = queued_;
  return stats;
}

}  // namespace serving
}  // namespace sumtab
