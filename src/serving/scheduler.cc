#include "serving/scheduler.h"

#include <algorithm>
#include <thread>

namespace sumtab {
namespace serving {

FairScheduler::FairScheduler(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Shared()) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  submitted_counter_ = registry.counter("serving.scheduler.submitted");
  executed_counter_ = registry.counter("serving.scheduler.executed");
  yields_counter_ = registry.counter("serving.scheduler.yields");
}

std::shared_ptr<Ticket> FairScheduler::Register(int weight) {
  weight = std::max(1, weight);
  std::lock_guard<std::mutex> lock(mu_);
  // Plain new: Ticket's constructor is private (friend access), which
  // make_shared's internal allocator can't reach.
  auto ticket = std::shared_ptr<Ticket>(
      new Ticket(this, std::max<int64_t>(1, kStrideScale / weight),
                 MinVtimeLocked()));
  tickets_.push_back(ticket);
  return ticket;
}

void FairScheduler::Unregister(const std::shared_ptr<Ticket>& ticket) {
  std::deque<std::function<void()>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans = std::move(ticket->queue_);
    ticket->queue_.clear();
    tickets_.erase(std::remove(tickets_.begin(), tickets_.end(), ticket),
                   tickets_.end());
  }
  // Defensive: a finished query has drained its queue (ParallelFor joins all
  // lanes), but never drop work on the floor.
  for (std::function<void()>& fn : orphans) pool_->Schedule(std::move(fn));
}

int64_t FairScheduler::MinVtimeLocked() const {
  int64_t min_vtime = 0;
  bool any = false;
  for (const auto& t : tickets_) {
    int64_t v = t->vtime();
    if (!any || v < min_vtime) {
      min_vtime = v;
      any = true;
    }
  }
  return any ? min_vtime : 0;
}

void FairScheduler::Enqueue(Ticket* ticket, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket->queue_.push_back(std::move(fn));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_->Increment();
  // One pump per task: every submission is matched by exactly one execution,
  // but WHICH task a pump runs is decided at pop time by virtual time.
  pool_->Schedule([this] { Pump(); });
}

void FairScheduler::Pump() {
  std::function<void()> fn;
  std::shared_ptr<Ticket> chosen;  // keeps the ticket alive across fn()
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& t : tickets_) {
      if (t->queue_.empty()) continue;
      if (chosen == nullptr || t->vtime() < chosen->vtime()) chosen = t;
    }
    if (chosen == nullptr) return;  // task drained by Unregister
    fn = std::move(chosen->queue_.front());
    chosen->queue_.pop_front();
    // A whole lane task is a bigger work unit than one checkpoint slice.
    chosen->vtime_.fetch_add(16 * chosen->stride_, std::memory_order_relaxed);
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  executed_counter_->Increment();
  // Re-install the query's scheduling context so nested ParallelFor /
  // Charge calls inside the lane see the same ticket.
  ScopedScheduleHook scoped(chosen.get());
  fn();
}

bool FairScheduler::ShouldYield(const Ticket& ticket) {
  // try_lock: the fairness probe must never become a contention point — if
  // someone else holds the registry, skip this round and check again in a
  // few thousand rows.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (tickets_.size() < 2) return false;  // alone: nothing to be fair to
  return ticket.vtime() > MinVtimeLocked() + kYieldSlack;
}

FairScheduler::Stats FairScheduler::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.yields = yields_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.active = static_cast<int>(tickets_.size());
  return stats;
}

void Ticket::Submit(std::function<void()> fn) {
  scheduler_->Enqueue(this, std::move(fn));
}

void Ticket::Checkpoint() {
  vtime_.fetch_add(stride_, std::memory_order_relaxed);
  uint32_t n = checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Probe every other checkpoint (~2k rows): a try_lock every couple of
  // thousand rows is noise in the solo profile, and on a saturated core it
  // bounds how long a heavy scan can run between chances to hand over.
  if ((n & 1u) == 0 && scheduler_->ShouldYield(*this)) {
    scheduler_->yields_.fetch_add(1, std::memory_order_relaxed);
    scheduler_->yields_counter_->Increment();
    std::this_thread::yield();
  }
}

}  // namespace serving
}  // namespace sumtab
