#include "serving/session.h"

#include "common/fault_injection.h"
#include "common/reject_reason.h"

namespace sumtab {
namespace serving {

namespace {

Status Reject(RejectReason reason, const std::string& detail) {
  return Status::ResourceExhausted(std::string("[") +
                                   RejectReasonToken(reason) + "] " + detail)
      .WithSubcode(static_cast<uint16_t>(reason));
}

/// Decrements a counter on scope exit (in-flight accounting across the many
/// early-return reject paths).
class ScopedDecrement {
 public:
  explicit ScopedDecrement(std::atomic<int>* counter) : counter_(counter) {}
  ~ScopedDecrement() { counter_->fetch_sub(1, std::memory_order_acq_rel); }
  ScopedDecrement(const ScopedDecrement&) = delete;
  ScopedDecrement& operator=(const ScopedDecrement&) = delete;

 private:
  std::atomic<int>* counter_;
};

}  // namespace

Server::Server(Database* db, AdmissionOptions admission)
    : db_(db), admission_(admission) {}

std::shared_ptr<Session> Server::CreateSession(SessionOptions options) {
  int64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Session>(new Session(this, id, options));
}

StatusOr<QueryResult> Session::Query(const std::string& sql,
                                     QueryOptions options) {
  static Counter* served =
      MetricsRegistry::Global().counter("serving.queries");
  static Counter* rejected =
      MetricsRegistry::Global().counter("serving.rejected");
  static Counter* stale_retries =
      MetricsRegistry::Global().counter("serving.snapshot_stale");

  auto reject = [&](RejectReason reason, const std::string& detail) {
    rejected->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    return Reject(reason, detail);
  };

  if (closed()) {
    return reject(RejectReason::kSessionClosed,
                  "session " + std::to_string(id_) + " is closed");
  }
  if (server_->shutting_down()) {
    return reject(RejectReason::kServerShuttingDown,
                  "server is shutting down");
  }

  // The per-session cap is charged before the admission queue, so a client
  // hammering one session hits its own wall instead of crowding the shared
  // waiting room.
  int in_flight = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  ScopedDecrement in_flight_guard(&in_flight_);
  if (in_flight > options_.max_in_flight) {
    return reject(RejectReason::kSessionInFlightLimit,
                  "session " + std::to_string(id_) + " already has " +
                      std::to_string(options_.max_in_flight) +
                      " queries in flight");
  }

  // Session ceilings clamp the per-query asks: a query requesting no budget
  // (0 = unlimited) or more than the ceiling gets the ceiling.
  if (options_.max_rows > 0 &&
      (options.max_rows == 0 || options.max_rows > options_.max_rows)) {
    options.max_rows = options_.max_rows;
  }
  if (options_.timeout_millis > 0 &&
      (options.timeout_millis == 0 ||
       options.timeout_millis > options_.timeout_millis)) {
    options.timeout_millis = options_.timeout_millis;
  }

  StatusOr<AdmissionController::Permit> permit = server_->admission().Admit();
  if (!permit.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    rejected->Increment();
    return permit.status();
  }

  std::shared_ptr<Ticket> ticket =
      server_->scheduler().Register(options_.weight);
  // The hook rides thread-local state: lane submissions and charge
  // checkpoints from anywhere inside this query resolve to this ticket.
  ScopedScheduleHook hook(ticket.get());

  for (int attempt = 0;; ++attempt) {
    // Resilience seam: a "stale snapshot" here models storage telling the
    // session its pinned read point is no longer servable (tests arm it);
    // the session transparently re-pins by re-issuing the query, which takes
    // a fresh snapshot inside Database::Query.
    Status stale = FaultInjector::Instance().Check("serving/snapshot");
    if (!stale.ok()) {
      stale_retries->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.snapshot_retries;
      }
      if (attempt + 1 >= kMaxSnapshotRetries) {
        server_->scheduler().Unregister(ticket);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.rejected;
        }
        rejected->Increment();
        return stale;
      }
      continue;
    }
    StatusOr<QueryResult> result = server_->db().Query(sql, options);
    server_->scheduler().Unregister(ticket);
    if (result.ok()) {
      served->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries;
      if (result->degradation.degraded) ++stats_.degraded;
      if (result->plan_cache_hit) ++stats_.plan_cache_hits;
      stats_.rows_returned += static_cast<int64_t>(result->relation.NumRows());
    } else {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries;  // it ran; failure is its verdict, not shed load
    }
    return result;
  }
}

SessionStats Session::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace serving
}  // namespace sumtab
