// Sessions and the server facade for concurrent serving (DESIGN.md,
// "Concurrent serving: sessions, snapshots, admission").
//
// A Server wraps one Database with the two serving policies — admission
// control and inter-query fair scheduling — and hands out Session handles.
// A Session is one client's view: its queries carry the session's resource
// ceilings (row budget, timeout), count against its in-flight limit, and are
// scheduled under its fairness weight. Snapshot isolation itself lives in
// Database/Storage (every query executes against the storage snapshot
// pinned at its planning instant); the session layer adds the multi-tenant
// envelope around it.
//
//   sumtab::Database db;            // ... tables, ASTs, data ...
//   sumtab::serving::Server server(&db);
//   auto analyst = server.CreateSession();
//   auto dashboard = server.CreateSession({.max_in_flight = 2,
//                                          .max_rows = 100'000,
//                                          .timeout_millis = 50});
//   auto result = dashboard->Query("select ...");   // thread-safe
//
// Every rejection is kResourceExhausted with a RejectReason subcode
// (admission_queue_full, admission_timeout, session_in_flight_limit,
// session_closed, server_shutting_down), so callers and tests can
// distinguish shed load from real failures without string matching.
#ifndef SUMTAB_SERVING_SESSION_H_
#define SUMTAB_SERVING_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "serving/admission.h"
#include "serving/scheduler.h"
#include "sumtab/database.h"

namespace sumtab {
namespace serving {

struct SessionOptions {
  /// Concurrent queries this session may have running/queued; the next one
  /// is rejected (session_in_flight_limit) without consuming an admission
  /// slot, so one runaway client can't occupy the whole admission queue.
  int max_in_flight = 4;
  /// Ceiling on QueryOptions::max_rows for this session's queries; 0 = no
  /// session ceiling. A query asking for more (or for unlimited) is clamped.
  int64_t max_rows = 0;
  /// Ceiling on QueryOptions::timeout_millis, same clamping rule.
  double timeout_millis = 0;
  /// Fair-share weight: a weight-2 session receives twice the scheduler
  /// share of a weight-1 session under contention.
  int weight = 1;
};

struct SessionStats {
  int64_t queries = 0;           // accepted (ran to a verdict)
  int64_t rejected = 0;          // shed before execution
  int64_t degraded = 0;          // recovered through the fallback path
  int64_t plan_cache_hits = 0;
  int64_t rows_returned = 0;
  int64_t snapshot_retries = 0;  // "serving/snapshot" fault re-pins
};

class Server;

class Session {
 public:
  /// Thread-safe; may be called concurrently with other sessions' queries
  /// and with Database mutators. Applies the session ceilings, takes an
  /// admission slot, registers with the fair scheduler, and runs the query
  /// against a pinned snapshot (via Database::Query).
  StatusOr<QueryResult> Query(const std::string& sql,
                              QueryOptions options = {});

  /// Subsequent queries are rejected (session_closed); in-flight ones
  /// finish normally.
  void Close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  int64_t id() const { return id_; }
  SessionStats GetStats() const;

 private:
  friend class Server;
  Session(Server* server, int64_t id, SessionOptions options)
      : server_(server), id_(id), options_(options) {}

  /// Re-pin attempts when the "serving/snapshot" fault point reports the
  /// pinned snapshot unusable before the ceiling is surfaced to the caller.
  static constexpr int kMaxSnapshotRetries = 3;

  Server* server_;
  const int64_t id_;
  const SessionOptions options_;
  std::atomic<bool> closed_{false};
  std::atomic<int> in_flight_{0};
  mutable std::mutex stats_mu_;
  SessionStats stats_;
};

class Server {
 public:
  /// `db` must outlive the server and every session. The server does not
  /// own it: DDL/loads keep going straight to the Database API.
  explicit Server(Database* db, AdmissionOptions admission = {});

  std::shared_ptr<Session> CreateSession(SessionOptions options = {});

  /// New queries on every session are rejected (server_shutting_down);
  /// in-flight queries finish normally.
  void Shutdown() { shutting_down_.store(true, std::memory_order_release); }
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

  Database& db() { return *db_; }
  AdmissionController& admission() { return admission_; }
  FairScheduler& scheduler() { return scheduler_; }

 private:
  Database* db_;
  AdmissionController admission_;
  FairScheduler scheduler_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<int64_t> next_session_id_{1};
};

}  // namespace serving
}  // namespace sumtab

#endif  // SUMTAB_SERVING_SESSION_H_
