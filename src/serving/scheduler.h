// Inter-query fair scheduler (stride scheduling) for the serving layer.
//
// Problem: a 40 ms W7-style aggregation and a 20 µs warm-cache lookup share
// one worker pool. FIFO at the pool means the heavy query's lane tasks camp
// on every worker and the cheap query's p99 explodes to the heavy query's
// runtime. Fairness needs two levers, both reached through the
// QueryScheduleHook seam in common/thread_pool.h:
//
//  1. Task ordering — ParallelFor lane tasks are queued per query (Ticket)
//     and a pump drains them lowest-virtual-time-first, so a backlogged
//     heavy query cannot starve a newly arrived cheap one.
//  2. Cooperative yields — inside long operator loops the executor calls
//     Checkpoint() every ~1024 rows; a query that is far ahead of the
//     furthest-behind active query donates its OS slice. This is the only
//     lever when lanes run inline (max_threads=1, or a single-core host).
//
// Virtual time is classic stride scheduling: each ticket advances by
// kStrideScale / weight per unit of work, so a weight-2 query ages half as
// fast and receives twice the share.
#ifndef SUMTAB_SERVING_SCHEDULER_H_
#define SUMTAB_SERVING_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace sumtab {
namespace serving {

class FairScheduler;

/// One query's scheduling identity. Install it as the thread's
/// QueryScheduleHook (ScopedScheduleHook) for the duration of the query;
/// the engine then routes lane tasks and checkpoints through it.
class Ticket : public QueryScheduleHook {
 public:
  /// Queues `fn` under this ticket and kicks a pump on the pool. Called by
  /// ParallelFor through the hook seam.
  void Submit(std::function<void()> fn) override;

  /// Advances virtual time; every few calls, yields the OS slice if this
  /// query is far ahead of the furthest-behind active query.
  void Checkpoint() override;

  int64_t vtime() const { return vtime_.load(std::memory_order_relaxed); }

 private:
  friend class FairScheduler;
  Ticket(FairScheduler* scheduler, int64_t stride, int64_t start_vtime)
      : scheduler_(scheduler), stride_(stride), vtime_(start_vtime) {}

  FairScheduler* scheduler_;
  const int64_t stride_;  // kStrideScale / weight
  std::atomic<int64_t> vtime_;
  std::atomic<uint32_t> checkpoints_{0};
  std::deque<std::function<void()>> queue_;  // guarded by scheduler mu_
};

class FairScheduler {
 public:
  /// Virtual-time advance per unit of work for weight 1.
  static constexpr int64_t kStrideScale = 1024;
  /// A query may run ahead of the minimum by this much before Checkpoint()
  /// starts yielding.
  static constexpr int64_t kYieldSlack = 8 * kStrideScale;

  /// `pool` = nullptr uses ThreadPool::Shared().
  explicit FairScheduler(ThreadPool* pool = nullptr);
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Registers a query. Its virtual time starts at the current active
  /// minimum, so a newcomer is immediately the most deserving without
  /// getting credit for time it never waited.
  std::shared_ptr<Ticket> Register(int weight = 1);

  /// Removes the ticket; any still-queued tasks are handed straight to the
  /// pool (ParallelFor has a completion barrier, so in practice the queue is
  /// already drained when a query finishes).
  void Unregister(const std::shared_ptr<Ticket>& ticket);

  struct Stats {
    int64_t submitted = 0;  // lane tasks routed through tickets
    int64_t executed = 0;   // lane tasks run by pumps
    int64_t yields = 0;     // checkpoint yields taken
    int active = 0;         // registered tickets right now
  };
  Stats GetStats() const;

 private:
  friend class Ticket;

  void Enqueue(Ticket* ticket, std::function<void()> fn);
  /// Runs one task from the lowest-vtime ticket with queued work.
  void Pump();
  bool ShouldYield(const Ticket& ticket);
  int64_t MinVtimeLocked() const;

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Ticket>> tickets_;
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> yields_{0};
  Counter* submitted_counter_;
  Counter* executed_counter_;
  Counter* yields_counter_;
};

}  // namespace serving
}  // namespace sumtab

#endif  // SUMTAB_SERVING_SCHEDULER_H_
