// Write-ahead log: CRC-framed, length-prefixed records appended to numbered
// segment files, hardened by an fsync'd group-commit flusher with a bounded
// flush interval.
//
// On-disk framing, per record:
//
//     [u32 frame_len][u32 crc32(payload)][payload]
//     payload = [u64 lsn][u8 record_type][body...]
//
// LSNs are assigned by the writer and strictly increase across segments.
// A record is *committed* once Harden(lsn) returns OK: its bytes (and all
// earlier records') have been write(2)n and fsync(2)ed. The Database facade
// hardens each mutation's record BEFORE publishing the corresponding
// in-memory version under the catalog lock, so the on-disk commit lattice
// matches the in-memory one: recovery can never surface state a concurrent
// reader could not have observed.
//
// Group commit: appends buffer in memory; a background flusher batches
// everything pending into one write+fsync, triggered by Harden() waiters or
// by the bounded flush interval (relaxed mode's data-loss window). IO
// failures are sticky — a writer that failed a flush refuses further
// appends, mirroring a real log device going away.
//
// Fault points: "wal/append" (fail an append), "wal/fsync" (fail or crash
// before the batch reaches disk — records buffered but never written are
// lost, exactly like power failing before the flush), and "wal/torn_write"
// (write only a prefix of the frame, simulating a torn sector; recovery
// truncates the tail).
#ifndef SUMTAB_WAL_WAL_H_
#define SUMTAB_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace sumtab {
namespace wal {

/// Logical operation types recorded in the log. Stable on-disk constants.
enum class RecordType : uint8_t {
  kCreateTable = 1,
  kAddForeignKey = 2,
  kBulkLoad = 3,
  kAppend = 4,
  kDefineSummary = 5,
  kDropSummary = 6,
  kRefreshSummary = 7,
  kSetMaxStaleness = 8,
  /// An append committed WITHOUT synchronous AST maintenance (deferred
  /// mode): replay re-appends the rows and re-retains the delta slice, but
  /// runs no refresh — dependent ASTs recover stale-but-compensatable.
  kAppendDeferred = 9,
};

struct Record {
  uint64_t lsn = 0;
  uint8_t type = 0;
  std::string body;
};

/// "wal-00000042.log" — zero-padded so lexicographic order == numeric order.
std::string SegmentFileName(uint64_t seq);

class Writer {
 public:
  struct Options {
    /// True: Harden() is required for commit (the Database hardens before
    /// every publish). False: appends are buffered and flushed within
    /// `flush_interval_micros` — a bounded window of committed-in-memory but
    /// not-yet-durable operations that a crash may lose (always a clean
    /// prefix cut, never a torn state).
    bool sync = true;
    /// Upper bound on how long an appended record may sit unflushed.
    int64_t flush_interval_micros = 2000;
  };

  /// Opens (creating if needed) segment `segment_seq` in `dir` for append
  /// and starts the flusher. `next_lsn` continues the recovered sequence.
  static StatusOr<std::unique_ptr<Writer>> Open(const std::string& dir,
                                                uint64_t segment_seq,
                                                uint64_t next_lsn,
                                                const Options& options);
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Frames and buffers one record; returns its LSN. The record is NOT
  /// durable until Harden(lsn) (or, relaxed mode, the next flush).
  StatusOr<uint64_t> Append(RecordType type, const std::string& body);

  /// Blocks until every record with LSN <= `lsn` is written and fsync'd.
  Status Harden(uint64_t lsn);

  /// Flushes + fsyncs everything pending, closes the current segment, and
  /// starts appending to segment `new_seq`. Used by checkpointing to bound
  /// the set of segments a checkpoint must cover.
  Status Roll(uint64_t new_seq);

  uint64_t last_lsn() const;
  uint64_t durable_lsn() const;
  uint64_t segment_seq() const;
  int64_t records_appended() const;
  int64_t bytes_appended() const;

 private:
  Writer(std::string dir, uint64_t segment_seq, uint64_t next_lsn,
         const Options& options);

  Status OpenSegmentLocked();
  void FlusherLoop();

  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // wakes the flusher
  std::condition_variable done_cv_;   // wakes Harden()/Roll() waiters
  int fd_ = -1;
  uint64_t seq_;
  uint64_t next_lsn_;
  uint64_t last_lsn_ = 0;     // last appended
  uint64_t durable_lsn_ = 0;  // last fsync'd
  std::string pending_;       // framed bytes not yet handed to the flusher
  bool flush_requested_ = false;
  bool stop_ = false;
  bool flush_in_progress_ = false;
  Status io_status_;  // sticky first IO failure
  int64_t records_ = 0;
  int64_t bytes_ = 0;
  std::thread flusher_;
};

/// Result of scanning every segment in a directory, in order.
struct ScanResult {
  std::vector<Record> records;
  /// Highest segment sequence present (0 when the directory has none).
  uint64_t max_segment_seq = 0;
  /// Bytes removed by torn-tail truncation (repair mode).
  int64_t truncated_bytes = 0;
  /// Number of torn/corrupt regions encountered (the scan stops at the
  /// first one — everything after it is an unreachable suffix).
  int64_t torn_events = 0;
};

/// Reads every record from every `wal-*.log` segment under `dir`. A torn or
/// corrupt frame ends the scan (records are a clean prefix of the log);
/// with `repair` set the torn tail is truncated off its segment so repeated
/// recoveries are idempotent. Fault point: "recovery/replay" is NOT checked
/// here — the Database checks it per applied record.
StatusOr<ScanResult> ScanDir(const std::string& dir, bool repair);

/// Deletes every segment with sequence <= `seq` (post-checkpoint pruning).
Status RemoveSegmentsThrough(const std::string& dir, uint64_t seq);

}  // namespace wal
}  // namespace sumtab

#endif  // SUMTAB_WAL_WAL_H_
