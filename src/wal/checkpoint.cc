#include "wal/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/reject_reason.h"
#include "wal/codec.h"

namespace sumtab {
namespace wal {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'S', 'T', 'C', 'K'};

Status Errno(const std::string& what) {
  return RejectIo(RejectReason::kIoError, what + ": " + std::strerror(errno));
}

Status Corrupt(const std::string& detail) {
  return RejectIo(RejectReason::kCheckpointCorruption, detail);
}

uint64_t CheckpointSeqOf(const std::string& filename) {
  if (filename.size() != 5 + 8 + 5 || filename.rfind("ckpt-", 0) != 0 ||
      filename.substr(13) != ".stck") {
    return 0;
  }
  uint64_t seq = 0;
  for (int i = 5; i < 13; ++i) {
    char c = filename[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

void AppendSection(std::string* out, SectionType type,
                   const std::string& payload) {
  PutU8(out, static_cast<uint8_t>(type));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

void PutColumn(std::string* out, const catalog::Column& col) {
  PutString(out, col.name);
  PutU8(out, static_cast<uint8_t>(col.type));
  PutU8(out, col.nullable ? 1 : 0);
}

void PutTable(std::string* out, const catalog::Table& table) {
  PutString(out, table.name);
  PutU32(out, static_cast<uint32_t>(table.columns.size()));
  for (const catalog::Column& col : table.columns) PutColumn(out, col);
  PutU32(out, static_cast<uint32_t>(table.primary_key.size()));
  for (const std::string& pk : table.primary_key) PutString(out, pk);
  PutU8(out, table.is_summary_table ? 1 : 0);
}

catalog::Column GetColumn(Decoder* in) {
  catalog::Column col;
  col.name = in->String();
  col.type = static_cast<Type>(in->U8());
  col.nullable = in->U8() != 0;
  return col;
}

catalog::Table GetTable(Decoder* in) {
  catalog::Table table;
  table.name = in->String();
  uint32_t ncols = in->U32();
  for (uint32_t i = 0; i < ncols && in->ok(); ++i) {
    table.columns.push_back(GetColumn(in));
  }
  uint32_t npk = in->U32();
  for (uint32_t i = 0; i < npk && in->ok(); ++i) {
    table.primary_key.push_back(in->String());
  }
  table.is_summary_table = in->U8() != 0;
  return table;
}

std::string EncodeMeta(const CheckpointState& state) {
  std::string out;
  PutU64(&out, state.last_lsn);
  PutU64(&out, state.wal_segment_seq);
  PutI64(&out, state.catalog_generation);
  PutU32(&out, static_cast<uint32_t>(state.foreign_keys.size()));
  for (const catalog::ForeignKey& fk : state.foreign_keys) {
    PutString(&out, fk.child_table);
    PutString(&out, fk.child_column);
    PutString(&out, fk.parent_table);
    PutString(&out, fk.parent_column);
  }
  return out;
}

std::string EncodeBaseTable(const CheckpointBaseTable& bt) {
  std::string out;
  PutTable(&out, bt.table);
  PutI64(&out, bt.epoch);
  PutRelation(&out, bt.data);
  return out;
}

std::string EncodeAstMeta(const CheckpointAst& ast) {
  std::string out;
  PutString(&out, ast.name);
  PutString(&out, ast.sql);
  PutTable(&out, ast.table);
  PutEpochMap(&out, ast.materialized_epochs);
  PutI64(&out, ast.max_staleness);
  PutU32(&out, static_cast<uint32_t>(ast.consecutive_failures));
  PutU8(&out, ast.disabled ? 1 : 0);
  PutU8(&out, ast.advisor_owned ? 1 : 0);
  return out;
}

std::string EncodeWorkload(const WorkloadSnapshot& workload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(workload.queries.size()));
  for (const WorkloadQueryStats& q : workload.queries) {
    PutString(&out, q.normalized_sql);
    PutI64(&out, q.executions);
    PutI64(&out, q.rewritten);
    PutI64(&out, q.compensated);
    PutI64(&out, q.base_leaf_rows);
    PutI64(&out, q.total_leaf_rows);
    PutString(&out, q.last_reject);
    PutEpochMap(&out, q.ast_hits);
  }
  PutU32(&out, static_cast<uint32_t>(workload.appends.size()));
  for (const auto& [table, stats] : workload.appends) {
    PutString(&out, table);
    PutI64(&out, stats.batches);
    PutI64(&out, stats.rows);
  }
  PutI64(&out, workload.evicted);
  return out;
}

Status WriteFully(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir " + dir);
  Status st = ::fsync(fd) == 0 ? Status::OK() : Errno("fsync dir " + dir);
  ::close(fd);
  return st;
}

}  // namespace

std::string CheckpointFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%08llu.stck",
                static_cast<unsigned long long>(seq));
  return buf;
}

Status WriteCheckpoint(const std::string& dir, uint64_t seq,
                       const CheckpointState& state) {
  static Histogram* duration_hist =
      MetricsRegistry::Global().histogram("checkpoint.write");
  ScopedLatency timer(duration_hist);

  std::string contents(kMagic, 4);
  PutU32(&contents, kCheckpointVersion);

  SUMTAB_FAULT_POINT("checkpoint/write");
  AppendSection(&contents, SectionType::kMeta, EncodeMeta(state));
  for (const CheckpointBaseTable& bt : state.base_tables) {
    SUMTAB_FAULT_POINT("checkpoint/write");
    AppendSection(&contents, SectionType::kBaseTable, EncodeBaseTable(bt));
  }
  for (const CheckpointAst& ast : state.asts) {
    SUMTAB_FAULT_POINT("checkpoint/write");
    AppendSection(&contents, SectionType::kAstMeta, EncodeAstMeta(ast));
    std::string data;
    PutRelation(&data, ast.data);
    AppendSection(&contents, SectionType::kAstData, data);
  }
  for (const CheckpointDelta& delta : state.deltas) {
    SUMTAB_FAULT_POINT("checkpoint/write");
    std::string payload;
    PutString(&payload, delta.table);
    PutI64(&payload, delta.epoch);
    PutRelation(&payload, delta.data);
    AppendSection(&contents, SectionType::kDeltaPartition, payload);
  }
  if (state.workload_present) {
    SUMTAB_FAULT_POINT("checkpoint/write");
    AppendSection(&contents, SectionType::kWorkloadLog,
                  EncodeWorkload(state.workload));
  }
  AppendSection(&contents, SectionType::kEnd, "");

  std::string final_path = dir + "/" + CheckpointFileName(seq);
  std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("open " + tmp_path);
  Status st = WriteFully(fd, contents.data(), contents.size());
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync " + tmp_path);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp_path.c_str());
    return st;
  }

  // A crash between here and the rename leaves only the tmp file — the
  // previous checkpoint is still the latest and still valid.
  SUMTAB_FAULT_POINT("checkpoint/write");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status rn = Errno("rename " + tmp_path);
    ::unlink(tmp_path.c_str());
    return rn;
  }
  SUMTAB_RETURN_NOT_OK(SyncDir(dir));
  MetricsRegistry::Global().counter("checkpoint.count")->Increment();
  MetricsRegistry::Global()
      .counter("checkpoint.bytes")
      ->Increment(static_cast<int64_t>(contents.size()));
  return Status::OK();
}

StatusOr<CheckpointLoadResult> LoadLatestCheckpoint(const std::string& dir) {
  CheckpointLoadResult result;
  uint64_t best_seq = 0;
  std::string best_path;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = CheckpointSeqOf(entry.path().filename().string());
    if (seq > best_seq) {
      best_seq = seq;
      best_path = entry.path().string();
    }
  }
  if (ec) {
    return RejectIo(RejectReason::kIoError,
                    "list " + dir + ": " + ec.message());
  }
  if (best_seq == 0) return result;  // no checkpoint: found stays false

  std::ifstream in(best_path, std::ios::binary);
  if (!in) return RejectIo(RejectReason::kIoError, "open " + best_path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  if (contents.size() < 8 || std::memcmp(contents.data(), kMagic, 4) != 0) {
    return Corrupt(best_path + ": bad magic");
  }
  {
    Decoder header(contents.data() + 4, 4);
    uint32_t version = header.U32();
    if (version != kCheckpointVersion) {
      return RejectIo(RejectReason::kCheckpointVersionMismatch,
                      best_path + ": version " + std::to_string(version) +
                          ", expected " +
                          std::to_string(kCheckpointVersion));
    }
  }

  result.found = true;
  result.seq = best_seq;
  CheckpointState& state = result.state;

  size_t pos = 8;
  bool saw_meta = false;
  bool saw_end = false;
  while (pos < contents.size() && !saw_end) {
    if (contents.size() - pos < 9) {
      return Corrupt(best_path + ": truncated section header");
    }
    Decoder header(contents.data() + pos, 9);
    uint8_t type = header.U8();
    uint32_t len = header.U32();
    uint32_t crc = header.U32();
    if (contents.size() - pos - 9 < len) {
      return Corrupt(best_path + ": truncated section payload");
    }
    const char* payload = contents.data() + pos + 9;
    bool crc_ok = Crc32(payload, static_cast<size_t>(len)) == crc;
    pos += 9 + len;

    switch (static_cast<SectionType>(type)) {
      case SectionType::kMeta: {
        if (!crc_ok) return Corrupt(best_path + ": meta section CRC");
        Decoder body(payload, len);
        state.last_lsn = body.U64();
        state.wal_segment_seq = body.U64();
        state.catalog_generation = body.I64();
        uint32_t nfk = body.U32();
        for (uint32_t i = 0; i < nfk && body.ok(); ++i) {
          catalog::ForeignKey fk;
          fk.child_table = body.String();
          fk.child_column = body.String();
          fk.parent_table = body.String();
          fk.parent_column = body.String();
          state.foreign_keys.push_back(std::move(fk));
        }
        if (!body.AtEnd()) return Corrupt(best_path + ": meta decode");
        saw_meta = true;
        break;
      }
      case SectionType::kBaseTable: {
        if (!crc_ok) return Corrupt(best_path + ": base-table section CRC");
        Decoder body(payload, len);
        CheckpointBaseTable bt;
        bt.table = GetTable(&body);
        bt.epoch = body.I64();
        bt.data = body.GetRelation();
        if (!body.AtEnd()) {
          return Corrupt(best_path + ": base-table decode (" +
                         bt.table.name + ")");
        }
        state.base_tables.push_back(std::move(bt));
        break;
      }
      case SectionType::kAstMeta: {
        if (!crc_ok) return Corrupt(best_path + ": AST meta section CRC");
        Decoder body(payload, len);
        CheckpointAst ast;
        ast.name = body.String();
        ast.sql = body.String();
        ast.table = GetTable(&body);
        ast.materialized_epochs = body.GetEpochMap();
        ast.max_staleness = body.I64();
        ast.consecutive_failures = static_cast<int32_t>(body.U32());
        ast.disabled = body.U8() != 0;
        ast.advisor_owned = body.U8() != 0;
        if (!body.AtEnd()) {
          return Corrupt(best_path + ": AST meta decode (" + ast.name + ")");
        }
        // No data yet; if the kAstData section that must follow is corrupt
        // or missing, data_ok stays false and recovery quarantines the AST.
        ast.data_ok = false;
        state.asts.push_back(std::move(ast));
        break;
      }
      case SectionType::kAstData: {
        if (state.asts.empty()) {
          return Corrupt(best_path + ": AST data without preceding meta");
        }
        CheckpointAst& ast = state.asts.back();
        if (!crc_ok) break;  // graceful: drop only this AST (data_ok=false)
        Decoder body(payload, len);
        engine::Relation data = body.GetRelation();
        if (!body.AtEnd()) break;  // same: decode failure drops the AST
        ast.data = std::move(data);
        ast.data_ok = true;
        break;
      }
      case SectionType::kDeltaPartition: {
        // Graceful on corruption: a dropped slice only opens a coverage gap,
        // which makes compensation refuse — never a wrong answer. Keep the
        // placeholder so recovery can report the drop.
        CheckpointDelta delta;
        delta.data_ok = false;
        if (crc_ok) {
          Decoder body(payload, len);
          delta.table = body.String();
          delta.epoch = body.I64();
          engine::Relation data = body.GetRelation();
          if (body.AtEnd()) {
            delta.data = std::move(data);
            delta.data_ok = true;
          }
        }
        state.deltas.push_back(std::move(delta));
        break;
      }
      case SectionType::kWorkloadLog: {
        // Graceful on corruption: the telemetry is advisory (the advisor
        // just starts from an emptier log), so a bad section drops ONLY the
        // workload — never the database.
        state.workload_present = false;
        state.workload_corrupt = true;
        if (!crc_ok) break;
        Decoder body(payload, len);
        WorkloadSnapshot workload;
        uint32_t nq = body.U32();
        for (uint32_t i = 0; i < nq && body.ok(); ++i) {
          WorkloadQueryStats q;
          q.normalized_sql = body.String();
          q.executions = body.I64();
          q.rewritten = body.I64();
          q.compensated = body.I64();
          q.base_leaf_rows = body.I64();
          q.total_leaf_rows = body.I64();
          q.last_reject = body.String();
          q.ast_hits = body.GetEpochMap();
          workload.queries.push_back(std::move(q));
        }
        uint32_t na = body.U32();
        for (uint32_t i = 0; i < na && body.ok(); ++i) {
          std::string table = body.String();
          WorkloadAppendStats stats;
          stats.batches = body.I64();
          stats.rows = body.I64();
          workload.appends.emplace(std::move(table), stats);
        }
        workload.evicted = body.I64();
        if (!body.AtEnd()) break;
        state.workload = std::move(workload);
        state.workload_present = true;
        state.workload_corrupt = false;
        break;
      }
      case SectionType::kEnd: {
        if (!crc_ok) return Corrupt(best_path + ": end section CRC");
        saw_end = true;
        break;
      }
      default:
        return Corrupt(best_path + ": unknown section type " +
                       std::to_string(type));
    }
  }
  if (!saw_meta || !saw_end) {
    return Corrupt(best_path + ": missing " +
                   std::string(saw_meta ? "end" : "meta") + " section");
  }
  return result;
}

Status RemoveCheckpointsBefore(const std::string& dir, uint64_t seq) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t s = CheckpointSeqOf(entry.path().filename().string());
    if (s > 0 && s < seq) {
      std::error_code rm;
      fs::remove(entry.path(), rm);
      if (rm) {
        return RejectIo(RejectReason::kIoError,
                        "remove " + entry.path().string() + ": " +
                            rm.message());
      }
    }
  }
  if (ec) {
    return RejectIo(RejectReason::kIoError,
                    "list " + dir + ": " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::vector<SectionInfo>> ListCheckpointSections(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return RejectIo(RejectReason::kIoError, "open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  if (contents.size() < 8 || std::memcmp(contents.data(), kMagic, 4) != 0) {
    return Corrupt(path + ": bad magic");
  }
  std::vector<SectionInfo> sections;
  size_t pos = 8;
  while (pos < contents.size()) {
    if (contents.size() - pos < 9) {
      return Corrupt(path + ": truncated section header");
    }
    Decoder header(contents.data() + pos, 9);
    SectionInfo info;
    info.type = static_cast<SectionType>(header.U8());
    info.payload_len = header.U32();
    header.U32();  // crc
    info.payload_offset = pos + 9;
    if (contents.size() - pos - 9 < info.payload_len) {
      return Corrupt(path + ": truncated section payload");
    }
    pos += 9 + info.payload_len;
    sections.push_back(info);
  }
  return sections;
}

}  // namespace wal
}  // namespace sumtab
