#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/reject_reason.h"
#include "wal/codec.h"

namespace sumtab {
namespace wal {

namespace {

namespace fs = std::filesystem;

/// Frames larger than this are treated as corruption, not allocations.
constexpr uint32_t kMaxFrameLen = 1u << 30;

Status Errno(const std::string& what) {
  return RejectIo(RejectReason::kIoError, what + ": " + std::strerror(errno));
}

Status WriteFully(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd) {
  if (::fsync(fd) != 0) return Errno("fsync");
  return Status::OK();
}

/// fsync the directory so a freshly created/renamed file survives a crash.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir " + dir);
  Status st = SyncFd(fd);
  ::close(fd);
  return st;
}

/// Segment sequence from a file name, or 0 if it is not a segment.
uint64_t SegmentSeqOf(const std::string& filename) {
  if (filename.size() != 4 + 8 + 4 || filename.rfind("wal-", 0) != 0 ||
      filename.substr(12) != ".log") {
    return 0;
  }
  uint64_t seq = 0;
  for (int i = 4; i < 12; ++i) {
    char c = filename[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

std::string SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

// ---- Writer ----

Writer::Writer(std::string dir, uint64_t segment_seq, uint64_t next_lsn,
               const Options& options)
    : dir_(std::move(dir)),
      options_(options),
      seq_(segment_seq),
      next_lsn_(next_lsn),
      last_lsn_(next_lsn - 1),
      durable_lsn_(next_lsn - 1) {}

StatusOr<std::unique_ptr<Writer>> Writer::Open(const std::string& dir,
                                               uint64_t segment_seq,
                                               uint64_t next_lsn,
                                               const Options& options) {
  std::unique_ptr<Writer> writer(
      new Writer(dir, segment_seq, next_lsn, options));
  {
    std::lock_guard<std::mutex> lock(writer->mu_);
    SUMTAB_RETURN_NOT_OK(writer->OpenSegmentLocked());
  }
  SUMTAB_RETURN_NOT_OK(SyncDir(dir));
  writer->flusher_ = std::thread(&Writer::FlusherLoop, writer.get());
  return writer;
}

Writer::~Writer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

Status Writer::OpenSegmentLocked() {
  std::string path = dir_ + "/" + SegmentFileName(seq_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open " + path);
  return Status::OK();
}

StatusOr<uint64_t> Writer::Append(RecordType type, const std::string& body) {
  static Histogram* append_hist =
      MetricsRegistry::Global().histogram("wal.append");
  static Counter* record_counter =
      MetricsRegistry::Global().counter("wal.records");
  SUMTAB_FAULT_POINT("wal/append");
  ScopedLatency timer(append_hist);

  std::string payload;
  payload.reserve(9 + body.size());
  PutU64(&payload, 0);  // lsn patched below, under the lock
  PutU8(&payload, static_cast<uint8_t>(type));
  payload.append(body);

  std::unique_lock<std::mutex> lock(mu_);
  if (!io_status_.ok()) return io_status_;
  uint64_t lsn = next_lsn_++;
  {
    std::string lsn_bytes;
    PutU64(&lsn_bytes, lsn);
    payload.replace(0, 8, lsn_bytes);
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);

  // Torn-write injection: put only a prefix of the frame on disk — as if
  // power failed mid-sector — and poison the writer. Recovery must truncate
  // this tail and serve the clean prefix.
  Status torn = FaultInjector::Instance().Check("wal/torn_write");
  if (!torn.ok()) {
    size_t cut = frame.size() / 2;
    if (cut < 9) cut = frame.size() - 1;  // always mid-payload
    Status wr = WriteFully(fd_, frame.data(), cut);
    if (wr.ok()) wr = SyncFd(fd_);
    io_status_ = RejectIo(RejectReason::kWalTornTail,
                          "torn write injected at lsn " + std::to_string(lsn) +
                              (wr.ok() ? "" : "; " + wr.ToString()));
    return io_status_;
  }

  pending_.append(frame);
  last_lsn_ = lsn;
  records_ += 1;
  bytes_ += static_cast<int64_t>(frame.size());
  record_counter->Increment();
  MetricsRegistry::Global()
      .counter("wal.bytes")
      ->Increment(static_cast<int64_t>(frame.size()));
  lock.unlock();
  work_cv_.notify_one();
  return lsn;
}

Status Writer::Harden(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  while (durable_lsn_ < lsn && io_status_.ok()) {
    flush_requested_ = true;
    work_cv_.notify_one();
    done_cv_.wait(lock);
  }
  if (durable_lsn_ >= lsn) return Status::OK();
  return io_status_;
}

Status Writer::Roll(uint64_t new_seq) {
  // Drain: everything appended so far must land in the OLD segment.
  SUMTAB_RETURN_NOT_OK(Harden(last_lsn()));
  std::unique_lock<std::mutex> lock(mu_);
  // Harden returned, so the flusher holds no in-flight IO on fd_ and cannot
  // start any without this lock.
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  seq_ = new_seq;
  SUMTAB_RETURN_NOT_OK(OpenSegmentLocked());
  lock.unlock();
  return SyncDir(dir_);
}

uint64_t Writer::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

uint64_t Writer::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t Writer::segment_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

int64_t Writer::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

int64_t Writer::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void Writer::FlusherLoop() {
  static Histogram* fsync_hist =
      MetricsRegistry::Global().histogram("wal.fsync");
  static Counter* fsync_counter =
      MetricsRegistry::Global().counter("wal.fsyncs");
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::microseconds(
      options_.flush_interval_micros > 0 ? options_.flush_interval_micros : 1);
  while (true) {
    if (pending_.empty()) {
      if (stop_) return;
      work_cv_.wait_for(lock, interval);
      continue;
    }
    if (!flush_requested_ && !stop_) {
      // Group-commit window: batch whatever arrives within one interval
      // unless a Harden() waiter asks for immediate durability.
      work_cv_.wait_for(lock, interval);
    }
    if (pending_.empty()) continue;
    std::string batch;
    batch.swap(pending_);
    uint64_t upto = last_lsn_;
    flush_requested_ = false;
    flush_in_progress_ = true;
    int fd = fd_;
    lock.unlock();

    // The fault point sits BEFORE the write: an injected failure (or crash)
    // here loses the whole batch, exactly like power failing before the
    // flush. (A SIGKILL after write(2) would keep the bytes — the kernel
    // owns them — which is what the separate torn-write point is for.)
    Status st = FaultInjector::Instance().Check("wal/fsync");
    if (st.ok()) {
      ScopedLatency timer(fsync_hist);
      st = WriteFully(fd, batch.data(), batch.size());
      if (st.ok()) st = SyncFd(fd);
      fsync_counter->Increment();
    }

    lock.lock();
    flush_in_progress_ = false;
    if (st.ok()) {
      durable_lsn_ = std::max(durable_lsn_, upto);
    } else if (io_status_.ok()) {
      io_status_ = st;
    }
    done_cv_.notify_all();
  }
}

// ---- scanning / recovery ----

StatusOr<ScanResult> ScanDir(const std::string& dir, bool repair) {
  static Counter* torn_counter =
      MetricsRegistry::Global().counter("recovery.torn_truncations");
  ScanResult result;
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = SegmentSeqOf(entry.path().filename().string());
    if (seq > 0) segments.emplace_back(seq, entry.path().string());
  }
  if (ec) {
    return RejectIo(RejectReason::kIoError,
                    "list " + dir + ": " + ec.message());
  }
  std::sort(segments.begin(), segments.end());

  uint64_t prev_lsn = 0;
  for (const auto& [seq, path] : segments) {
    result.max_segment_seq = seq;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return RejectIo(RejectReason::kIoError, "open " + path);
    }
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();

    size_t pos = 0;
    bool torn = false;
    while (pos < contents.size()) {
      Decoder header(contents.data() + pos,
                     std::min<size_t>(8, contents.size() - pos));
      uint32_t len = header.U32();
      uint32_t crc = header.U32();
      if (!header.ok() || len > kMaxFrameLen ||
          contents.size() - pos - 8 < len) {
        torn = true;  // ran off the end: classic torn tail
        break;
      }
      const char* payload = contents.data() + pos + 8;
      if (Crc32(payload, static_cast<size_t>(len)) != crc) {
        torn = true;  // bit rot or a torn overwrite within the frame
        break;
      }
      Decoder body(payload, len);
      Record record;
      record.lsn = body.U64();
      record.type = body.U8();
      record.body.assign(payload + 9, len - 9);
      if (!body.ok() || record.lsn <= prev_lsn) {
        torn = true;  // LSNs must strictly increase; anything else is rot
        break;
      }
      prev_lsn = record.lsn;
      result.records.push_back(std::move(record));
      pos += 8 + len;
    }
    if (torn) {
      result.torn_events += 1;
      torn_counter->Increment();
      result.truncated_bytes +=
          static_cast<int64_t>(contents.size() - pos);
      if (repair) {
        fs::resize_file(path, pos, ec);
        if (ec) {
          return RejectIo(RejectReason::kIoError,
                          "truncate " + path + ": " + ec.message());
        }
      }
      // Everything after a torn region — rest of this segment AND any later
      // segment — is an unreachable suffix: the clean prefix is the log.
      break;
    }
  }
  return result;
}

Status RemoveSegmentsThrough(const std::string& dir, uint64_t seq) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t s = SegmentSeqOf(entry.path().filename().string());
    if (s > 0 && s <= seq) {
      std::error_code rm;
      fs::remove(entry.path(), rm);
      if (rm) {
        return RejectIo(RejectReason::kIoError,
                        "remove " + entry.path().string() + ": " +
                            rm.message());
      }
    }
  }
  if (ec) {
    return RejectIo(RejectReason::kIoError,
                    "list " + dir + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace sumtab
