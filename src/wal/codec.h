// Binary encoding for WAL record bodies and checkpoint sections:
// little-endian fixed-width integers, length-prefixed strings, and tagged
// Values/Rows/Relations. The Decoder is bounds-checked and never throws —
// a truncated or corrupted payload flips it into a sticky error state the
// caller tests once at the end, so recovery can treat any malformed region
// as "not a record" instead of crashing on it.
#ifndef SUMTAB_WAL_CODEC_H_
#define SUMTAB_WAL_CODEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/value.h"
#include "engine/relation.h"

namespace sumtab {
namespace wal {

// ---- encoding (append to a std::string buffer) ----

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
void PutString(std::string* out, const std::string& s);
void PutValue(std::string* out, const Value& v);
void PutRow(std::string* out, const Row& row);
void PutRelation(std::string* out, const engine::Relation& rel);
void PutEpochMap(std::string* out, const std::map<std::string, int64_t>& m);

// ---- decoding ----

class Decoder {
 public:
  Decoder(const char* data, size_t len) : data_(data), len_(len) {}
  explicit Decoder(const std::string& s) : Decoder(s.data(), s.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64();
  double Double();
  std::string String();
  Value GetValue();
  Row GetRow();
  engine::Relation GetRelation();
  std::map<std::string, int64_t> GetEpochMap();

  /// False once any read ran past the end or hit an invalid tag. All reads
  /// after a failure return zero values; test once when done decoding.
  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (and no read failed).
  bool AtEnd() const { return ok_ && pos_ == len_; }
  size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

 private:
  bool Need(size_t n);

  const char* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wal
}  // namespace sumtab

#endif  // SUMTAB_WAL_CODEC_H_
