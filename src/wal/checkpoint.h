// Checkpoints: a point-in-time snapshot of the whole database — base tables,
// AST contents, AND the freshness bookkeeping (catalog generation, per-table
// epochs, each AST's materialized_epochs / max_staleness / quarantine state)
// — so a summary table that was stale before a crash is still known-stale
// after recovery instead of silently serving wrong rewrites.
//
// On-disk layout of `ckpt-NNNNNNNN.stck`:
//
//     "STCK" [u32 version]
//     section*          where section = [u8 type][u32 len][u32 crc][payload]
//
// Section types: kMeta (one, first: last_lsn / generation / foreign keys),
// kBaseTable (one per base table), kAstMeta + kAstData (paired, meta first),
// kEnd (one, last — its presence proves the file is complete).
//
// Each section carries its own CRC so corruption is attributable: a bad
// kAstData section drops ONLY that AST (recovery registers it kDisabled with
// reject subcode ast_dropped_on_recovery and the database keeps serving from
// base tables); a bad kMeta/kBaseTable/kAstMeta/kEnd section fails recovery
// with checkpoint_corruption, and an unknown version with
// checkpoint_version_mismatch.
//
// Writes go to a tmp file, fsync, then rename + directory fsync — a crash
// mid-checkpoint leaves the previous checkpoint untouched. Fault point:
// "checkpoint/write" (checked per section and before the final rename).
#ifndef SUMTAB_WAL_CHECKPOINT_H_
#define SUMTAB_WAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/relation.h"
#include "sumtab/workload_log.h"

namespace sumtab {
namespace wal {

/// Checkpoint format version; bump on incompatible layout changes.
/// v2: kAstMeta grew the advisor-owned flag; kWorkloadLog sections carry the
/// observed-workload telemetry across restarts.
constexpr uint32_t kCheckpointVersion = 2;

/// Section type tags. Stable on-disk constants.
enum class SectionType : uint8_t {
  kMeta = 1,
  kBaseTable = 2,
  kAstMeta = 3,
  kAstData = 4,
  kEnd = 5,
  /// One retained append-delta slice (table, epoch, rows). Absent in
  /// checkpoints written before delta compensation existed; readers treat
  /// absence as "no retained deltas" — same version, no migration.
  kDeltaPartition = 6,
  /// The workload log (src/sumtab/workload_log.h): observed query/append
  /// telemetry the advisor mines. At most one per checkpoint; absence reads
  /// as an empty log, and corruption drops ONLY the telemetry (reported as
  /// workload_dropped_on_recovery) — the log is advisory, never load-bearing
  /// for correctness.
  kWorkloadLog = 7,
};

struct CheckpointBaseTable {
  catalog::Table table;
  int64_t epoch = 0;
  engine::Relation data;
};

struct CheckpointAst {
  std::string name;
  std::string sql;
  catalog::Table table;  // registered schema (is_summary_table = true)
  std::map<std::string, int64_t> materialized_epochs;
  int64_t max_staleness = 0;
  int32_t consecutive_failures = 0;
  bool disabled = false;
  /// True for ASTs the advisor created (Database::AdviseAndApply / TUNE):
  /// ownership survives restart so the auto-DROP lifecycle keeps governing
  /// them in the recovered process.
  bool advisor_owned = false;
  engine::Relation data;
  /// False when this AST's kAstData section was corrupt or missing: the
  /// metadata survived but the rows did not. Recovery registers the AST
  /// kDisabled (empty data) instead of failing startup.
  bool data_ok = true;
};

struct CheckpointDelta {
  std::string table;  // lower-cased base-table key
  int64_t epoch = 0;  // the epoch this append slice produced
  engine::Relation data;
  /// False when this slice's section was corrupt: recovery drops ONLY the
  /// slice (a coverage gap makes compensation refuse — always safe) and
  /// reports delta_dropped_on_recovery instead of failing startup.
  bool data_ok = true;
};

struct CheckpointState {
  /// Records with lsn <= last_lsn are reflected in this snapshot; recovery
  /// replays only records past it.
  uint64_t last_lsn = 0;
  /// WAL segments with seq <= this are fully covered (safe to prune).
  uint64_t wal_segment_seq = 0;
  int64_t catalog_generation = 0;
  std::vector<catalog::ForeignKey> foreign_keys;
  std::vector<CheckpointBaseTable> base_tables;
  std::vector<CheckpointAst> asts;
  std::vector<CheckpointDelta> deltas;
  /// Workload-log telemetry. `workload_present` false when the checkpoint
  /// carries no kWorkloadLog section; `workload_corrupt` true when one
  /// existed but failed its CRC/decode (the telemetry is dropped, recovery
  /// reports workload_dropped_on_recovery, startup proceeds).
  bool workload_present = false;
  bool workload_corrupt = false;
  WorkloadSnapshot workload;
};

/// "ckpt-00000042.stck" — zero-padded, same convention as WAL segments.
std::string CheckpointFileName(uint64_t seq);

/// Serializes `state` to `dir`/CheckpointFileName(seq) atomically
/// (tmp + fsync + rename + dir fsync).
Status WriteCheckpoint(const std::string& dir, uint64_t seq,
                       const CheckpointState& state);

struct CheckpointLoadResult {
  /// False when `dir` holds no checkpoint (fresh directory): `state` is
  /// default-initialized and recovery replays the WAL from the beginning.
  bool found = false;
  uint64_t seq = 0;
  CheckpointState state;
};

/// Finds the highest-sequence checkpoint in `dir` and decodes it. Per-AST
/// data corruption is reported via CheckpointAst::data_ok, not an error.
StatusOr<CheckpointLoadResult> LoadLatestCheckpoint(const std::string& dir);

/// Deletes every checkpoint with sequence < `seq` (keep the one just
/// written, prune its predecessors).
Status RemoveCheckpointsBefore(const std::string& dir, uint64_t seq);

/// Byte layout of one section, for tests that corrupt targeted regions.
struct SectionInfo {
  SectionType type;
  /// Absolute file offset of the section's payload (header is the 9 bytes
  /// before it).
  uint64_t payload_offset = 0;
  uint32_t payload_len = 0;
};

/// Parses the section headers of a checkpoint file without decoding
/// payloads. Test helper for targeted corruption.
StatusOr<std::vector<SectionInfo>> ListCheckpointSections(
    const std::string& path);

}  // namespace wal
}  // namespace sumtab

#endif  // SUMTAB_WAL_CHECKPOINT_H_
