#include "wal/codec.h"

#include <cstring>

namespace sumtab {
namespace wal {

namespace {

/// Value kind tags on disk. Stable format constants: append new kinds at the
/// end, never renumber (checkpoints and WALs from older runs must decode).
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;
constexpr uint8_t kTagDate = 4;
constexpr uint8_t kTagBool = 5;

/// Hard cap on any length-prefixed field, far above real payloads; rejects
/// garbage lengths from corrupted bytes before they turn into allocations.
constexpr uint64_t kMaxFieldLen = 1ull << 31;

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      PutU8(out, kTagNull);
      return;
    case Value::Kind::kInt:
      PutU8(out, kTagInt);
      PutI64(out, v.AsInt());
      return;
    case Value::Kind::kDouble:
      PutU8(out, kTagDouble);
      PutDouble(out, v.AsDouble());
      return;
    case Value::Kind::kString:
      PutU8(out, kTagString);
      PutString(out, v.AsString());
      return;
    case Value::Kind::kDate:
      PutU8(out, kTagDate);
      PutU32(out, static_cast<uint32_t>(v.AsDate()));
      return;
    case Value::Kind::kBool:
      PutU8(out, kTagBool);
      PutU8(out, v.AsBool() ? 1 : 0);
      return;
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(out, v);
}

void PutRelation(std::string* out, const engine::Relation& rel) {
  PutU32(out, static_cast<uint32_t>(rel.column_names.size()));
  for (const std::string& name : rel.column_names) PutString(out, name);
  PutU64(out, rel.rows.size());
  for (const Row& row : rel.rows) PutRow(out, row);
}

void PutEpochMap(std::string* out, const std::map<std::string, int64_t>& m) {
  PutU32(out, static_cast<uint32_t>(m.size()));
  for (const auto& [name, epoch] : m) {
    PutString(out, name);
    PutI64(out, epoch);
  }
}

bool Decoder::Need(size_t n) {
  if (!ok_ || len_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Decoder::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Decoder::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Decoder::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

int64_t Decoder::I64() { return static_cast<int64_t>(U64()); }

double Decoder::Double() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::String() {
  uint32_t n = U32();
  if (n > kMaxFieldLen || !Need(n)) {
    ok_ = false;
    return "";
  }
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

Value Decoder::GetValue() {
  switch (U8()) {
    case kTagNull:
      return Value::Null();
    case kTagInt:
      return Value::Int(I64());
    case kTagDouble:
      return Value::Double(Double());
    case kTagString:
      return Value::String(String());
    case kTagDate:
      return Value::Date(static_cast<int32_t>(U32()));
    case kTagBool:
      return Value::Bool(U8() != 0);
    default:
      ok_ = false;
      return Value::Null();
  }
}

Row Decoder::GetRow() {
  uint32_t n = U32();
  Row row;
  if (n > kMaxFieldLen) {
    ok_ = false;
    return row;
  }
  row.reserve(ok_ ? n : 0);
  for (uint32_t i = 0; i < n && ok_; ++i) row.push_back(GetValue());
  return row;
}

engine::Relation Decoder::GetRelation() {
  engine::Relation rel;
  uint32_t ncols = U32();
  if (ncols > kMaxFieldLen) {
    ok_ = false;
    return rel;
  }
  for (uint32_t i = 0; i < ncols && ok_; ++i) {
    rel.column_names.push_back(String());
  }
  uint64_t nrows = U64();
  if (nrows > kMaxFieldLen) {
    ok_ = false;
    return rel;
  }
  for (uint64_t i = 0; i < nrows && ok_; ++i) rel.rows.push_back(GetRow());
  if (!ok_) rel = engine::Relation{};
  return rel;
}

std::map<std::string, int64_t> Decoder::GetEpochMap() {
  std::map<std::string, int64_t> m;
  uint32_t n = U32();
  if (n > kMaxFieldLen) {
    ok_ = false;
    return m;
  }
  for (uint32_t i = 0; i < n && ok_; ++i) {
    std::string name = String();
    int64_t epoch = I64();
    if (ok_) m[name] = epoch;
  }
  return m;
}

}  // namespace wal
}  // namespace sumtab
