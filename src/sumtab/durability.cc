// Database durability: logical WAL logging, checkpointing, and recovery
// (DESIGN.md, "Durability and recovery").
//
// The log is *logical*: each record is the already-validated input of one
// mutator (CreateTable / BulkLoad / Append / DefineSummaryTable / ...), and
// recovery replays it by calling that mutator again with `replaying_` set —
// the exact production code path runs, including incremental AST maintenance
// and recompute fallbacks, so the recovered state is bit-identical to the
// state a never-crashed process would hold after the same operation prefix.
//
// Commit protocol: a mutator logs (and, strict mode, hardens) its record
// AFTER its cheap validation but BEFORE its exclusive ddl_mu_ publish
// window. Consequences:
//   - A crash before the append: the operation never happened, in memory or
//     on disk.
//   - A crash between harden and publish: the op is on disk but was never
//     visible to any reader; replay applies it, which is indistinguishable
//     from the op having committed an instant before the crash.
//   - Operations that fail validation are never logged, so replay never
//     sees a record that would fail.
// The fsync therefore happens under maint_mu_ only — never inside the
// ddl_mu_ window that query planning waits on.
#include <filesystem>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/reject_reason.h"
#include "common/str_util.h"
#include "qgm/qgm_builder.h"
#include "sql/parser.h"
#include "sumtab/database.h"
#include "wal/checkpoint.h"
#include "wal/codec.h"
#include "wal/wal.h"

namespace sumtab {

namespace {

namespace fs = std::filesystem;

void PutCatalogTable(std::string* out, const catalog::Table& table) {
  wal::PutString(out, table.name);
  wal::PutU32(out, static_cast<uint32_t>(table.columns.size()));
  for (const catalog::Column& col : table.columns) {
    wal::PutString(out, col.name);
    wal::PutU8(out, static_cast<uint8_t>(col.type));
    wal::PutU8(out, col.nullable ? 1 : 0);
  }
  wal::PutU32(out, static_cast<uint32_t>(table.primary_key.size()));
  for (const std::string& pk : table.primary_key) wal::PutString(out, pk);
}

Status MalformedRecord(uint64_t lsn, const char* what) {
  return RejectIo(RejectReason::kWalCorruption,
                  std::string("malformed ") + what + " record at lsn " +
                      std::to_string(lsn));
}

}  // namespace

Database::Database(const DatabaseOptions& options)
    : options_(options), plan_cache_(kPlanCacheCapacity) {}

// ---- logging (callers hold maint_mu_) ----

Status Database::LogOp(uint8_t type, const std::string& body) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  SUMTAB_ASSIGN_OR_RETURN(
      uint64_t lsn, wal_->Append(static_cast<wal::RecordType>(type), body));
  ++records_since_checkpoint_;
  if (options_.wal_sync) return wal_->Harden(lsn);
  return Status::OK();
}

Status Database::LogCreateTableOp(const catalog::Table& table) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  std::string body;
  PutCatalogTable(&body, table);
  return LogOp(static_cast<uint8_t>(wal::RecordType::kCreateTable), body);
}

Status Database::LogForeignKeyOp(const std::string& child_table,
                                 const std::string& child_column,
                                 const std::string& parent_table,
                                 const std::string& parent_column) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  std::string body;
  wal::PutString(&body, child_table);
  wal::PutString(&body, child_column);
  wal::PutString(&body, parent_table);
  wal::PutString(&body, parent_column);
  return LogOp(static_cast<uint8_t>(wal::RecordType::kAddForeignKey), body);
}

Status Database::LogRowsOp(uint8_t type, const std::string& table,
                           const std::vector<Row>& rows) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  std::string body;
  wal::PutString(&body, table);
  wal::PutU64(&body, rows.size());
  for (const Row& row : rows) wal::PutRow(&body, row);
  return LogOp(type, body);
}

Status Database::LogNameOp(uint8_t type, const std::string& name) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  std::string body;
  wal::PutString(&body, name);
  return LogOp(type, body);
}

Status Database::LogDefineOp(const std::string& name, const std::string& sql,
                             bool advisor_owned) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  std::string body;
  wal::PutString(&body, name);
  wal::PutString(&body, sql);
  wal::PutU8(&body, advisor_owned ? 1 : 0);
  return LogOp(static_cast<uint8_t>(wal::RecordType::kDefineSummary), body);
}

Status Database::LogStalenessOp(const std::string& name,
                                int64_t max_epoch_lag) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  std::string body;
  wal::PutString(&body, name);
  wal::PutI64(&body, max_epoch_lag);
  return LogOp(static_cast<uint8_t>(wal::RecordType::kSetMaxStaleness), body);
}

// ---- recovery ----

StatusOr<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument(
        "DatabaseOptions::data_dir is required for Database::Open()");
  }
  std::unique_ptr<Database> db(new Database(options));
  SUMTAB_RETURN_NOT_OK(db->Recover());
  return db;
}

Status Database::Recover() {
  static Counter* replayed_counter =
      MetricsRegistry::Global().counter("recovery.replayed_records");
  static Counter* dropped_counter =
      MetricsRegistry::Global().counter("recovery.asts_dropped");
  static Histogram* replay_hist =
      MetricsRegistry::Global().histogram("recovery.replay");

  std::error_code ec;
  fs::create_directories(options_.data_dir, ec);
  if (ec) {
    return RejectIo(RejectReason::kIoError,
                    "create " + options_.data_dir + ": " + ec.message());
  }

  // 1. Latest checkpoint, if any: restore catalog + storage + the AST
  //    registry with their recorded freshness state.
  SUMTAB_ASSIGN_OR_RETURN(wal::CheckpointLoadResult ckpt,
                          wal::LoadLatestCheckpoint(options_.data_dir));
  uint64_t replay_from = 0;  // records with lsn <= this are in the snapshot
  uint64_t covered_seq = 0;  // WAL segments <= this predate the checkpoint
  if (ckpt.found) {
    checkpoint_seq_.store(ckpt.seq, std::memory_order_release);
    replay_from = ckpt.state.last_lsn;
    covered_seq = ckpt.state.wal_segment_seq;
    catalog_generation_.store(ckpt.state.catalog_generation,
                              std::memory_order_release);
    for (wal::CheckpointBaseTable& bt : ckpt.state.base_tables) {
      std::string name = bt.table.name;
      SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(bt.table)));
      SUMTAB_RETURN_NOT_OK(storage_.AddTable(name, std::move(bt.data)));
      storage_.SetEpoch(name, bt.epoch);
    }
    for (const catalog::ForeignKey& fk : ckpt.state.foreign_keys) {
      SUMTAB_RETURN_NOT_OK(catalog_.AddForeignKey(
          fk.child_table, fk.child_column, fk.parent_table, fk.parent_column));
    }
    if (ckpt.state.workload_corrupt) {
      // Advisory telemetry only: dropping it never affects answers, so a
      // corrupt section is an event, not a failure.
      recovery_events_.push_back(RecoveryEvent{
          RejectReasonToken(RejectReason::kWorkloadDroppedOnRecovery),
          "workload log dropped: corrupt checkpoint section"});
    } else if (ckpt.state.workload_present) {
      workload_log_.Restore(ckpt.state.workload);
      // Re-seed the query counter from the restored log BEFORE recovering
      // ASTs: RecoverAst stamps created_at_query from it, so recovered ASTs
      // restart their decay window at zero instead of appearing to have
      // idled through every pre-restart query.
      int64_t observed = 0;
      for (const WorkloadQueryStats& q : ckpt.state.workload.queries) {
        observed += q.executions;
      }
      queries_observed_.store(observed, std::memory_order_release);
    }
    for (wal::CheckpointAst& ast : ckpt.state.asts) {
      SUMTAB_RETURN_NOT_OK(RecoverAst(std::move(ast)));
    }
    for (wal::CheckpointDelta& delta : ckpt.state.deltas) {
      if (!delta.data_ok) {
        // Graceful: a lost slice only opens a coverage gap — compensation
        // refuses and the stale AST waits for a refresh; answers stay
        // correct from base tables.
        recovery_events_.push_back(RecoveryEvent{
            RejectReasonToken(RejectReason::kDeltaDroppedOnRecovery),
            "delta slice for '" + delta.table + "' epoch " +
                std::to_string(delta.epoch) +
                " dropped: corrupt checkpoint section"});
        ++recovery_deltas_dropped_;
        continue;
      }
      storage_.RetainDelta(delta.table, delta.epoch, std::move(delta.data));
    }
  }

  // 2. Scan the WAL with repair on: a torn tail is truncated off its
  //    segment, so a crash *during this recovery* re-runs against the same
  //    clean prefix — repeated crashed recoveries converge.
  SUMTAB_ASSIGN_OR_RETURN(wal::ScanResult scan,
                          wal::ScanDir(options_.data_dir, /*repair=*/true));
  if (scan.torn_events > 0) {
    recovery_truncated_bytes_ = scan.truncated_bytes;
    recovery_events_.push_back(RecoveryEvent{
        RejectReasonToken(RejectReason::kWalTornTail),
        "truncated " + std::to_string(scan.truncated_bytes) +
            " torn tail byte(s)"});
  }

  // 3. Replay past the checkpoint through the normal mutator code paths.
  //    Recovery writes nothing here (Log* helpers are disabled), so a crash
  //    mid-replay leaves the directory exactly as this pass found it.
  ScopedLatency replay_timer(replay_hist);
  replaying_ = true;
  for (const wal::Record& record : scan.records) {
    if (record.lsn <= replay_from) continue;
    Status st = FaultInjector::Instance().Check("recovery/replay");
    if (st.ok()) st = ApplyRecord(record.lsn, record.type, record.body);
    if (!st.ok()) {
      replaying_ = false;
      return RejectIo(RejectReason::kRecoveryFailed,
                      "replaying lsn " + std::to_string(record.lsn) + ": " +
                          st.ToString());
    }
    ++recovery_replayed_;
    replayed_counter->Increment();
  }
  replaying_ = false;
  if (recovery_asts_dropped_ > 0) {
    dropped_counter->Increment(recovery_asts_dropped_);
  }
  if (recovery_deltas_dropped_ > 0) {
    MetricsRegistry::Global()
        .counter("recovery.deltas_dropped")
        ->Increment(recovery_deltas_dropped_);
  }

  // 4. Start logging on a FRESH segment past everything scanned — never
  //    append into a segment a previous incarnation wrote (idempotent even
  //    when the previous recovery died between truncation and here).
  uint64_t last_lsn = replay_from;
  if (!scan.records.empty()) {
    last_lsn = std::max(last_lsn, scan.records.back().lsn);
  }
  uint64_t next_seq = std::max(scan.max_segment_seq, covered_seq) + 1;
  wal::Writer::Options wopts;
  wopts.sync = options_.wal_sync;
  wopts.flush_interval_micros = options_.group_commit_interval_micros;
  SUMTAB_ASSIGN_OR_RETURN(
      wal_,
      wal::Writer::Open(options_.data_dir, next_seq, last_lsn + 1, wopts));
  return Status::OK();
}

Status Database::RecoverAst(wal::CheckpointAst&& ast) {
  SUMTAB_RETURN_NOT_OK(catalog_.AddTable(ast.table));

  // The definition graph is rebuilt by re-parsing the stored SQL — cheap,
  // deterministic, and independent of whether the data section survived.
  qgm::Graph graph;
  bool graph_ok = false;
  {
    StatusOr<std::shared_ptr<sql::SelectStmt>> stmt = sql::Parse(ast.sql);
    if (stmt.ok()) {
      StatusOr<qgm::Graph> built = qgm::BuildGraph(**stmt, catalog_);
      if (built.ok()) {
        graph = std::move(*built);
        graph_ok = true;
      }
    }
  }

  bool dropped = !ast.data_ok || !graph_ok;
  engine::Relation data;
  if (dropped) {
    // Graceful degradation: the AST is dropped to kDisabled with an empty
    // materialization — queries keep succeeding from base tables, and (if
    // the graph rebuilt) a RefreshSummaryTable() recompute revives it.
    for (const catalog::Column& col : ast.table.columns) {
      data.column_names.push_back(col.name);
    }
    recovery_events_.push_back(RecoveryEvent{
        RejectReasonToken(RejectReason::kAstDroppedOnRecovery),
        "summary table '" + ast.name + "' dropped: " +
            (ast.data_ok ? "definition no longer builds"
                         : "corrupt checkpoint data section")});
    ++recovery_asts_dropped_;
  } else {
    data = std::move(ast.data);
  }
  SUMTAB_RETURN_NOT_OK(storage_.AddTable(ast.name, std::move(data)));

  if (!graph_ok) {
    // Without a definition graph the AST can neither serve rewrites nor be
    // refreshed; leave it out of the registry entirely (its catalog/storage
    // entries are inert, like a dropped summary table's).
    return Status::OK();
  }
  auto st = std::make_shared<SummaryTable>();
  st->name = ToLower(ast.name);
  st->sql = ast.sql;
  st->graph = std::move(graph);
  st->materialized_epochs = std::move(ast.materialized_epochs);
  st->max_staleness = ast.max_staleness;
  st->consecutive_failures.store(ast.consecutive_failures,
                                 std::memory_order_release);
  st->disabled.store(ast.disabled || dropped, std::memory_order_release);
  // Advisor ownership survives restart so the auto-DROP lifecycle keeps
  // governing the AST. The hit-rate window restarts with the process.
  st->advisor_owned = ast.advisor_owned;
  st->created_at_query = queries_observed_.load(std::memory_order_acquire);
  summary_tables_.push_back(std::move(st));
  return Status::OK();
}

Status Database::ApplyRecord(uint64_t lsn, uint8_t type,
                             const std::string& body) {
  wal::Decoder in(body);
  switch (static_cast<wal::RecordType>(type)) {
    case wal::RecordType::kCreateTable: {
      std::string name = in.String();
      uint32_t ncols = in.U32();
      std::vector<catalog::Column> columns;
      for (uint32_t i = 0; i < ncols && in.ok(); ++i) {
        catalog::Column col;
        col.name = in.String();
        col.type = static_cast<Type>(in.U8());
        col.nullable = in.U8() != 0;
        columns.push_back(std::move(col));
      }
      uint32_t npk = in.U32();
      std::vector<std::string> primary_key;
      for (uint32_t i = 0; i < npk && in.ok(); ++i) {
        primary_key.push_back(in.String());
      }
      if (!in.AtEnd()) return MalformedRecord(lsn, "CreateTable");
      return CreateTable(name, columns, primary_key);
    }
    case wal::RecordType::kAddForeignKey: {
      std::string ct = in.String();
      std::string cc = in.String();
      std::string pt = in.String();
      std::string pc = in.String();
      if (!in.AtEnd()) return MalformedRecord(lsn, "AddForeignKey");
      return AddForeignKey(ct, cc, pt, pc);
    }
    case wal::RecordType::kBulkLoad:
    case wal::RecordType::kAppend:
    case wal::RecordType::kAppendDeferred: {
      std::string table = in.String();
      uint64_t nrows = in.U64();
      std::vector<Row> rows;
      for (uint64_t i = 0; i < nrows && in.ok(); ++i) {
        rows.push_back(in.GetRow());
      }
      if (!in.AtEnd()) return MalformedRecord(lsn, "BulkLoad/Append");
      if (static_cast<wal::RecordType>(type) == wal::RecordType::kBulkLoad) {
        return BulkLoad(table, std::move(rows));
      }
      // A deferred append replays deferred: the rows are re-appended and
      // re-retained as a delta slice, no maintenance runs, and dependent
      // ASTs recover into the same stale-but-compensatable state (identical
      // epoch high-water marks) the pre-crash process held.
      AppendOptions append_options;
      append_options.maintain = static_cast<wal::RecordType>(type) !=
                                wal::RecordType::kAppendDeferred;
      return Append(table, std::move(rows), append_options).status();
    }
    case wal::RecordType::kDefineSummary: {
      std::string name = in.String();
      std::string sql = in.String();
      // Trailing advisor-owned flag; absent in records written before the
      // advisor existed (treated as user-owned).
      bool advisor_owned = !in.AtEnd() && in.U8() != 0;
      if (!in.AtEnd()) return MalformedRecord(lsn, "DefineSummary");
      return DefineSummaryTable(name, sql, advisor_owned).status();
    }
    case wal::RecordType::kDropSummary: {
      std::string name = in.String();
      if (!in.AtEnd()) return MalformedRecord(lsn, "DropSummary");
      return DropSummaryTable(name);
    }
    case wal::RecordType::kRefreshSummary: {
      std::string name = in.String();
      if (!in.AtEnd()) return MalformedRecord(lsn, "RefreshSummary");
      // Refreshes are logged before they run, so the live attempt may have
      // failed AFTER logging; the replayed attempt fails the same
      // deterministic way and the AST lands in the same (stale) state.
      (void)RefreshSummaryTable(name);
      return Status::OK();
    }
    case wal::RecordType::kSetMaxStaleness: {
      std::string name = in.String();
      int64_t lag = in.I64();
      if (!in.AtEnd()) return MalformedRecord(lsn, "SetMaxStaleness");
      return SetMaxStaleness(name, lag);
    }
  }
  return RejectIo(RejectReason::kWalCorruption,
                  "unknown record type " + std::to_string(type) +
                      " at lsn " + std::to_string(lsn));
}

// ---- checkpointing ----

Status Database::Checkpoint() {
  std::lock_guard<std::mutex> maint(maint_mu_);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "durability is not enabled (open with DatabaseOptions::data_dir)");
  }
  // Cut the log first: everything logged so far lands in the old segments
  // (covered by this checkpoint); everything after the roll lands in the
  // new one (to be replayed on top of it). Under maint_mu_ no mutator is
  // mid-operation, so every logged record's effect is published and the
  // in-memory state captured below reflects exactly the log through
  // last_lsn.
  uint64_t covered_seq = wal_->segment_seq();
  uint64_t last_lsn = wal_->last_lsn();
  SUMTAB_RETURN_NOT_OK(wal_->Roll(covered_seq + 1));

  wal::CheckpointState state;
  state.last_lsn = last_lsn;
  state.wal_segment_seq = covered_seq;
  state.catalog_generation =
      catalog_generation_.load(std::memory_order_acquire);
  state.foreign_keys = catalog_.foreign_keys();
  for (const std::string& name : catalog_.TableNames()) {
    const catalog::Table* table = catalog_.FindTable(name);
    if (table->is_summary_table) continue;  // ASTs come from the registry
    const engine::Relation* rel = storage_.FindTable(name);
    if (rel == nullptr) continue;
    wal::CheckpointBaseTable bt;
    bt.table = *table;
    bt.epoch = storage_.Epoch(name);
    bt.data = *rel;
    state.base_tables.push_back(std::move(bt));
  }
  for (const SummaryTablePtr& st : summary_tables_) {
    const catalog::Table* table = catalog_.FindTable(st->name);
    const engine::Relation* rel = storage_.FindTable(st->name);
    if (table == nullptr || rel == nullptr) continue;
    wal::CheckpointAst ast;
    ast.name = st->name;
    ast.sql = st->sql;
    ast.table = *table;
    ast.materialized_epochs = st->materialized_epochs;
    ast.max_staleness = st->max_staleness;
    ast.consecutive_failures =
        st->consecutive_failures.load(std::memory_order_acquire);
    ast.disabled = st->disabled.load(std::memory_order_acquire);
    ast.advisor_owned = st->advisor_owned;
    ast.data = *rel;
    state.asts.push_back(std::move(ast));
  }
  // The observed workload travels with the checkpoint so the advisor's
  // input survives restart (always present; an empty log encodes small).
  state.workload = workload_log_.Snapshot();
  state.workload_present = true;
  // Retained delta slices travel with the checkpoint so a recovered process
  // can re-compensate the same stale ASTs without the covering WAL segments.
  std::vector<engine::Storage::RetainedDelta> retained =
      storage_.RetainedDeltas();
  for (engine::Storage::RetainedDelta& rd : retained) {
    wal::CheckpointDelta cd;
    cd.table = std::move(rd.table);
    cd.epoch = rd.epoch;
    cd.data = std::move(rd.data);
    state.deltas.push_back(std::move(cd));
  }

  uint64_t seq = checkpoint_seq_.load(std::memory_order_acquire) + 1;
  SUMTAB_RETURN_NOT_OK(wal::WriteCheckpoint(options_.data_dir, seq, state));
  checkpoint_seq_.store(seq, std::memory_order_release);
  checkpoints_written_.fetch_add(1, std::memory_order_acq_rel);
  records_since_checkpoint_ = 0;

  // Prune what the new checkpoint supersedes. Failures here are real IO
  // errors worth surfacing, but the state on disk stays recoverable either
  // way: replay skips records at or below the checkpoint's last_lsn.
  SUMTAB_RETURN_NOT_OK(wal::RemoveCheckpointsBefore(options_.data_dir, seq));
  return wal::RemoveSegmentsThrough(options_.data_dir, covered_seq);
}

void Database::MaybeCheckpointLocked() {
  if (wal_ == nullptr || replaying_ ||
      options_.checkpoint_interval_records <= 0 ||
      records_since_checkpoint_ < options_.checkpoint_interval_records) {
    return;
  }
  // Best effort: a failed auto-checkpoint must not fail the mutation that
  // triggered it (the WAL still covers everything); it is counted and the
  // next mutation retries.
  if (!CheckpointLocked().ok()) {
    MetricsRegistry::Global().counter("checkpoint.auto_failures")->Increment();
  }
}

}  // namespace sumtab
