// Workload log: the telemetry the advisor mines (DESIGN.md, "Workload
// advisor"). Database::QuerySelect records every executed SELECT here —
// normalized SQL, execution count, the leaf rows a base-table plan scans,
// whether the query rewrote (and through which ASTs) or why it did not —
// and Database::Append records per-table append rates, so the advisor can
// charge candidates their incremental-maintenance cost. Bounded (eviction
// drops the least-executed entry) and thread-safe (one mutex; entries are
// tiny and recording is far off the execution hot path). Snapshots travel
// in checkpoints (SectionType::kWorkloadLog) so a restart keeps the
// observed workload.
#ifndef SUMTAB_SUMTAB_WORKLOAD_LOG_H_
#define SUMTAB_SUMTAB_WORKLOAD_LOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sumtab {

/// Accumulated observations for one normalized query text.
struct WorkloadQueryStats {
  std::string normalized_sql;
  int64_t executions = 0;
  int64_t rewritten = 0;    // executions answered through an AST
  int64_t compensated = 0;  // subset of `rewritten` served via delta legs
  /// Leaf rows a base-table plan scans for this query (last observed value;
  /// tracks table growth).
  int64_t base_leaf_rows = 0;
  /// Sum of base_leaf_rows over all executions — the workload's direct cost.
  int64_t total_leaf_rows = 0;
  /// Why the last execution did NOT rewrite: "" (it did), "no_match" (no AST
  /// offered a rewrite), or "costlier_than_base" (offers existed but lost on
  /// cost).
  std::string last_reject;
  /// AST name -> times this query's plan spliced it in.
  std::map<std::string, int64_t> ast_hits;
};

/// Observed append traffic for one base table (feeds the advisor's
/// maintenance-cost model: incremental merges cost ~rows, recomputes cost
/// ~batches x base size).
struct WorkloadAppendStats {
  int64_t batches = 0;
  int64_t rows = 0;
};

/// Point-in-time copy of the whole log. `queries` is sorted by
/// normalized_sql so consumers (advisor, checkpoint encoding) iterate in a
/// deterministic order.
struct WorkloadSnapshot {
  std::vector<WorkloadQueryStats> queries;
  std::map<std::string, WorkloadAppendStats> appends;
  /// Entries dropped by the capacity bound since the last Clear().
  int64_t evicted = 0;
};

class WorkloadLog {
 public:
  /// Distinct normalized query texts retained. Beyond it, recording a NEW
  /// text evicts the least-executed entry (ties: lexicographically last), so
  /// the frequent queries the advisor cares about survive a scan of
  /// one-off statements.
  static constexpr size_t kDefaultCapacity = 512;

  explicit WorkloadLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}
  WorkloadLog(const WorkloadLog&) = delete;
  WorkloadLog& operator=(const WorkloadLog&) = delete;

  /// One executed query, as QuerySelect saw it.
  struct QueryObservation {
    std::string normalized_sql;
    int64_t base_leaf_rows = 0;
    bool rewritten = false;
    bool compensated = false;
    std::string reject;  // "" when rewritten
    std::vector<std::string> used_asts;
  };

  void RecordQuery(const QueryObservation& obs);
  void RecordAppend(const std::string& table, int64_t rows);

  WorkloadSnapshot Snapshot() const;
  /// Replaces the whole log with `snap` (checkpoint recovery).
  void Restore(const WorkloadSnapshot& snap);
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, WorkloadQueryStats> queries_;
  std::map<std::string, WorkloadAppendStats> appends_;
  int64_t evicted_ = 0;
};

}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_WORKLOAD_LOG_H_
