#include "sumtab/workload_log.h"

#include <algorithm>

namespace sumtab {

void WorkloadLog::RecordQuery(const QueryObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(obs.normalized_sql);
  if (it == queries_.end()) {
    if (capacity_ > 0 && queries_.size() >= capacity_) {
      // Evict the least-executed entry; among ties the lexicographically
      // LAST key goes, so eviction is deterministic and the retained set is
      // independent of arrival order.
      auto victim = queries_.begin();
      for (auto cand = queries_.begin(); cand != queries_.end(); ++cand) {
        if (cand->second.executions < victim->second.executions ||
            (cand->second.executions == victim->second.executions &&
             cand->first > victim->first)) {
          victim = cand;
        }
      }
      queries_.erase(victim);
      ++evicted_;
    }
    WorkloadQueryStats fresh;
    fresh.normalized_sql = obs.normalized_sql;
    it = queries_.emplace(obs.normalized_sql, std::move(fresh)).first;
  }
  WorkloadQueryStats& stats = it->second;
  ++stats.executions;
  stats.base_leaf_rows = obs.base_leaf_rows;
  stats.total_leaf_rows += obs.base_leaf_rows;
  if (obs.rewritten) {
    ++stats.rewritten;
    if (obs.compensated) ++stats.compensated;
    stats.last_reject.clear();
    for (const std::string& ast : obs.used_asts) ++stats.ast_hits[ast];
  } else {
    stats.last_reject = obs.reject;
  }
}

void WorkloadLog::RecordAppend(const std::string& table, int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadAppendStats& stats = appends_[table];
  ++stats.batches;
  stats.rows += rows;
}

WorkloadSnapshot WorkloadLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadSnapshot snap;
  snap.queries.reserve(queries_.size());
  for (const auto& [key, stats] : queries_) snap.queries.push_back(stats);
  snap.appends = appends_;
  snap.evicted = evicted_;
  return snap;
}

void WorkloadLog::Restore(const WorkloadSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.clear();
  appends_ = snap.appends;
  evicted_ = snap.evicted;
  for (const WorkloadQueryStats& stats : snap.queries) {
    queries_[stats.normalized_sql] = stats;
  }
}

void WorkloadLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.clear();
  appends_.clear();
  evicted_ = 0;
}

}  // namespace sumtab
