// Mutex-sharded LRU cache of rewrite-plan decisions.
//
// PR 4 introduced the plan cache as one map under one mutex; under a
// concurrent serving load every warm-cache query serializes on that lock.
// This version hashes keys across kNumShards independent partitions, each
// with its own mutex, map, LRU list, and counters, so unrelated queries
// proceed in parallel and a contended acquisition is visible in the metrics
// (plan_cache.shard<i>.contention counts lock acquisitions that had to
// block). Validation policy (catalog generation, base-table epochs, AST
// serviceability) stays with the caller — Database supplies it as a
// validator callback so the cache itself has no coupling to freshness
// bookkeeping.
#ifndef SUMTAB_SUMTAB_PLAN_CACHE_H_
#define SUMTAB_SUMTAB_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "matching/compensation.h"
#include "qgm/qgm.h"

namespace sumtab {

/// One memoized rewrite decision (DESIGN.md, "Parallel execution and plan
/// caching"). Key = normalized SQL + the planning-relevant options;
/// validity = (catalog generation, epoch of every base table the original
/// query scans, serviceability of every spliced-in AST) — judged by the
/// caller's validator at lookup time.
struct CachedPlan {
  qgm::Graph plan;  // the graph Query() would execute (rewritten or not)
  bool used_summary_table = false;
  std::string summary_table;
  std::string rewritten_sql;
  int candidate_rewrites = 0;
  std::vector<std::string> used_asts;
  /// Set for "stale but compensatable" plans: the two-leg compensation plan
  /// that answered via a stale AST + its retained deltas. Immutable and
  /// shared — hits copy the pointer, not the legs. `plan` then holds the
  /// ORIGINAL graph (the execution fallback); validity additionally pins the
  /// delta high-water mark: the entry dies (cause "delta:<table>") as soon
  /// as a refresh absorbs the range or further appends move the mark.
  std::shared_ptr<const matching::CompensationPlan> compensation;
  /// Catalog generation at planning time. Any DDL/AST-lifecycle bump after
  /// it invalidates the entry.
  int64_t generation = 0;
  /// Epochs of the original query's base tables at planning time. Any bump
  /// (BulkLoad / Append) invalidates: the plan may scan an AST whose
  /// content no longer reflects the base data.
  std::map<std::string, int64_t> base_epochs;
  /// Leaf rows a base-table plan scans for this query, captured at planning
  /// time. Lets a cache hit feed the workload log (src/sumtab/workload_log.h)
  /// the same direct-cost figure the compile path computes, without
  /// re-parsing. Epoch validation bounds its drift: any base-table change
  /// invalidates the entry, so the figure is exact for the snapshot served.
  int64_t base_leaf_rows = 0;
};

class ShardedPlanCache {
 public:
  static constexpr int kNumShards = 8;

  /// `capacity` is the total entry budget, split evenly across shards;
  /// least-recently-used entries are evicted per shard beyond it.
  explicit ShardedPlanCache(size_t capacity);
  ShardedPlanCache(const ShardedPlanCache&) = delete;
  ShardedPlanCache& operator=(const ShardedPlanCache&) = delete;

  enum class Lookup { kHit, kMiss, kInvalidated };

  /// Returns "" when the entry is still valid, else the invalidation cause
  /// ("generation", "epoch:<table>", "ast:<name>", or "delta:<table>" for a
  /// compensation entry whose delta range moved). Called with the shard
  /// lock held, so it must not re-enter the cache.
  using Validator = std::function<std::string(const CachedPlan&)>;

  /// Validates + pops the entry for `key`. On kHit, `*out` receives a deep
  /// copy of the cached plan and the entry moves to the front of its
  /// shard's LRU. On kInvalidated, the entry is dropped and
  /// `*invalidation_cause` (if non-null) receives the validator's verdict.
  Lookup LookupAndValidate(const std::string& key, const Validator& validator,
                           CachedPlan* out,
                           std::string* invalidation_cause = nullptr);

  /// Inserts/replaces the entry for `key`, evicting LRU entries beyond the
  /// shard's capacity.
  void Insert(const std::string& key, CachedPlan entry);

  /// Drops the entry for `key` (used when a cached plan fails to execute).
  void Forget(const std::string& key);

  /// Aggregated counters across shards (Database::Stats()).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
    int64_t entries = 0;
  };
  Stats TotalStats() const;

 private:
  struct Node {
    CachedPlan plan;
    std::list<std::string>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Node> entries;
    std::list<std::string> lru;  // front = most recent
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
    // Registered once per shard at construction; increments are lock-free.
    Counter* hits_counter = nullptr;
    Counter* misses_counter = nullptr;
    Counter* invalidations_counter = nullptr;
    Counter* contention_counter = nullptr;
  };

  Shard& ShardFor(const std::string& key);

  /// Locks a shard, counting acquisitions that had to block.
  static std::unique_lock<std::mutex> Lock(const Shard& shard);

  size_t shard_capacity_;
  Shard shards_[kNumShards];
};

}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_PLAN_CACHE_H_
