// Incremental-maintenance analysis, exposed for unit tests and for
// EXPLAIN REWRITE (which reports, per offered AST, whether an append to a
// base table would merge incrementally or force a recompute — and why).
#ifndef SUMTAB_SUMTAB_MAINTENANCE_H_
#define SUMTAB_SUMTAB_MAINTENANCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "expr/expr.h"
#include "qgm/qgm.h"

namespace sumtab {
namespace maintenance {

/// How an AST's materialized rows absorb an insert delta on one base table.
struct MergePlan {
  bool spj_append = false;    // no aggregation: append delta rows verbatim
  std::vector<int> key_cols;  // output positions forming the group key
  struct AggCol {
    int col;
    expr::AggFunc func;
  };
  std::vector<AggCol> agg_cols;
};

/// Decides whether `graph` (an AST definition) supports incremental insert
/// maintenance for appends to `delta_table`, and how its output columns
/// merge. Rejections carry a maint_* RejectReason subcode; in particular
/// kMaintDeltaRefCount distinguishes "referenced != 1 time" (the caller
/// checks the actual count to tell unaffected from self-join).
StatusOr<MergePlan> AnalyzeMergePlan(const qgm::Graph& graph,
                                     const std::string& delta_table);

/// Merges one materialized aggregate cell with the same cell computed over
/// the delta. Mirrors the executor's accumulator-combine semantics
/// (engine/aggregator.cc) so an incremental merge lands on the same value
/// and Value kind a full recompute would produce:
///   COUNT: Int addition (never NULL on either side in practice);
///   SUM:   NULL identity; Int+Int stays Int, any Double side promotes —
///          exactly the accumulator's sticky-double rule, because a
///          materialized/delta SUM is Double iff its partition saw a double;
///   MIN/MAX: NULL identity, then operator< (cross-kind numeric compare).
Value MergeAggregateValues(expr::AggFunc func, const Value& current,
                           const Value& delta);

}  // namespace maintenance
}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_MAINTENANCE_H_
