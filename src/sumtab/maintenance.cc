// Summary-table maintenance (paper related problem (c)): insert-delta
// propagation in the style of Mumick et al., "Maintenance of Data Cubes and
// Summary Tables in a Warehouse" (the paper's reference [10]).
//
// For a mergeable AST — a single aggregate block whose root projects the
// GROUP-BY outputs untouched — the delta rows are aggregated by executing
// the AST's own QGM graph with the appended table overridden by the delta,
// and the per-group results merge into the materialized table: COUNT/SUM
// add, MIN/MAX combine, new groups append. Anything else (HAVING, DISTINCT
// aggregates, scalar subqueries, self-references, nested blocks) recomputes.
#include <chrono>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "engine/executor.h"
#include "expr/expr_rewrite.h"
#include "sumtab/database.h"

namespace sumtab {

namespace {

struct MergePlan {
  bool spj_append = false;            // no aggregation: append delta rows
  std::vector<int> key_cols;          // output positions forming the group key
  struct AggCol {
    int col;
    expr::AggFunc func;
  };
  std::vector<AggCol> agg_cols;
};

/// Decides whether `graph` (an AST definition) supports incremental insert
/// maintenance, and how its output columns merge.
StatusOr<MergePlan> AnalyzeMergePlan(const qgm::Graph& graph,
                                     const std::string& delta_table) {
  int references = 0;
  for (qgm::BoxId id : graph.TopologicalOrder()) {
    const qgm::Box* box = graph.box(id);
    if (box->kind == qgm::Box::Kind::kBase &&
        box->table_name == delta_table) {
      ++references;
    }
    if (box->distinct) {
      return Status::NotSupported("DISTINCT block");
    }
    for (const qgm::Quantifier& q : box->quantifiers) {
      if (q.kind == qgm::Quantifier::Kind::kScalar) {
        return Status::NotSupported("scalar subquery");
      }
    }
  }
  if (references != 1) {
    return Status::NotSupported("appended table referenced != 1 time");
  }

  const qgm::Box* root = graph.box(graph.root());
  MergePlan plan;
  if (root->kind == qgm::Box::Kind::kSelect && root->quantifiers.size() >= 1 &&
      graph.box(root->quantifiers[0].child)->kind != qgm::Box::Kind::kGroupBy) {
    // Select-project-join AST: the delta's SPJ result appends directly —
    // provided no GROUP-BY exists anywhere.
    for (qgm::BoxId id : graph.TopologicalOrder()) {
      if (graph.box(id)->IsGroupBy()) {
        return Status::NotSupported("aggregation below a join");
      }
    }
    plan.spj_append = true;
    return plan;
  }
  if (root->kind != qgm::Box::Kind::kSelect ||
      root->quantifiers.size() != 1) {
    return Status::NotSupported("unexpected root shape");
  }
  if (!root->predicates.empty()) {
    return Status::NotSupported("HAVING predicate");  // filters break merging
  }
  const qgm::Box* gb = graph.box(root->quantifiers[0].child);
  if (!gb->IsGroupBy()) {
    return Status::NotSupported("root child is not a GROUP-BY");
  }
  // Exactly one aggregate block: nothing below the GROUP-BY's select may
  // group again.
  const qgm::Box* lower = graph.box(gb->quantifiers[0].child);
  if (lower->kind != qgm::Box::Kind::kSelect) {
    return Status::NotSupported("GROUP-BY child is not a SELECT");
  }
  for (const qgm::Quantifier& q : lower->quantifiers) {
    if (graph.box(q.child)->kind != qgm::Box::Kind::kBase) {
      return Status::NotSupported("nested query block");
    }
  }
  // Root outputs must be bare references to GROUP-BY outputs.
  for (size_t i = 0; i < root->outputs.size(); ++i) {
    int col = -1;
    if (!expr::IsSimpleColumnRef(root->outputs[i].expr, 0, &col)) {
      return Status::NotSupported("computed expression above the aggregate");
    }
    if (gb->IsGroupingOutput(col)) {
      plan.key_cols.push_back(static_cast<int>(i));
      continue;
    }
    const expr::ExprPtr& agg = gb->outputs[col].expr;
    if (agg->agg_distinct) {
      return Status::NotSupported("DISTINCT aggregate");
    }
    switch (agg->agg) {
      case expr::AggFunc::kCount:
      case expr::AggFunc::kSum:
      case expr::AggFunc::kMin:
      case expr::AggFunc::kMax:
        break;
      default:
        return Status::NotSupported("non-mergeable aggregate");
    }
    plan.agg_cols.push_back(MergePlan::AggCol{static_cast<int>(i), agg->agg});
  }
  return plan;
}

Value MergeValues(expr::AggFunc func, const Value& current,
                  const Value& delta) {
  if (current.is_null()) return delta;
  if (delta.is_null()) return current;
  switch (func) {
    case expr::AggFunc::kCount:
      return Value::Int(current.AsInt() + delta.AsInt());
    case expr::AggFunc::kSum:
      if (current.kind() == Value::Kind::kInt &&
          delta.kind() == Value::Kind::kInt) {
        return Value::Int(current.AsInt() + delta.AsInt());
      }
      return Value::Double(current.ToDouble() + delta.ToDouble());
    case expr::AggFunc::kMin:
      return delta < current ? delta : current;
    case expr::AggFunc::kMax:
      return current < delta ? delta : current;
    default:
      return current;
  }
}

}  // namespace

Status Database::RefreshSummaryTable(const std::string& name) {
  SummaryTable* st = FindSummaryTable(name);
  if (st == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  SUMTAB_FAULT_POINT("maintenance/refresh");
  engine::Executor executor(storage_);
  SUMTAB_ASSIGN_OR_RETURN(engine::Relation data, executor.Execute(st->graph));
  engine::Relation* stored = storage_.FindTableMutable(st->name);
  if (stored == nullptr) {
    return Status::Internal("summary table data missing");
  }
  stored->rows = std::move(data.rows);
  // A successful recompute is the one event that both re-captures the base
  // epochs and lifts a quarantine.
  MarkRefreshed(st);
  return Status::OK();
}

StatusOr<Database::MaintenanceReport> Database::Append(
    const std::string& table, std::vector<Row> rows) {
  const catalog::Table* meta = catalog_.FindTable(table);
  if (meta == nullptr) {
    return Status::NotFound("table '" + table + "'");
  }
  if (meta->is_summary_table) {
    return Status::InvalidArgument("cannot append to a summary table");
  }
  for (const Row& row : rows) {
    if (row.size() != meta->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
  }
  engine::Relation delta;
  const engine::Relation* stored_base = storage_.FindTable(table);
  delta.column_names = stored_base->column_names;
  delta.rows = std::move(rows);

  MaintenanceReport report;

  // Phase 1: aggregate the delta through every incrementally-maintainable
  // AST (reads dimensions from storage, the appended table from the delta).
  struct Pending {
    SummaryTable* st;
    MergePlan plan;
    engine::Relation delta_result;
  };
  std::vector<Pending> incremental;
  std::vector<SummaryTable*> recompute;
  for (const auto& st : summary_tables_) {
    auto start = std::chrono::steady_clock::now();
    StatusOr<MergePlan> plan = AnalyzeMergePlan(st->graph, meta->name);
    if (!plan.ok()) {
      bool unaffected = false;
      if (plan.status().message() ==
          "appended table referenced != 1 time") {
        // Distinguish 0 references (unaffected) from self-joins.
        int refs = 0;
        for (qgm::BoxId id : st->graph.TopologicalOrder()) {
          const qgm::Box* box = st->graph.box(id);
          refs += box->kind == qgm::Box::Kind::kBase &&
                          box->table_name == meta->name
                      ? 1
                      : 0;
        }
        unaffected = refs == 0;
      }
      if (unaffected) {
        report.entries.push_back(
            RefreshEntry{st->name, RefreshMode::kUnaffected, 0, ""});
      } else {
        recompute.push_back(st.get());
      }
      continue;
    }
    std::map<std::string, const engine::Relation*> overrides;
    overrides[meta->name] = &delta;
    engine::ExecOptions options;
    options.table_overrides = &overrides;
    engine::Executor executor(storage_, options);
    Status injected = FaultInjector::Instance().Check("maintenance/incremental");
    StatusOr<engine::Relation> delta_eval =
        injected.ok() ? executor.Execute(st->graph)
                      : StatusOr<engine::Relation>(std::move(injected));
    if (!delta_eval.ok()) {
      // Incremental path broke; fall back to full recomputation rather than
      // failing the append.
      recompute.push_back(st.get());
      continue;
    }
    engine::Relation delta_result = std::move(*delta_eval);
    auto end = std::chrono::steady_clock::now();
    Pending pending;
    pending.st = st.get();
    pending.plan = std::move(*plan);
    pending.delta_result = std::move(delta_result);
    incremental.push_back(std::move(pending));
    report.entries.push_back(RefreshEntry{
        st->name, RefreshMode::kIncremental,
        std::chrono::duration<double, std::milli>(end - start).count(), ""});
  }

  // Phase 2: append the delta to the base table and version the change.
  engine::Relation* base = storage_.FindTableMutable(meta->name);
  base->rows.insert(base->rows.end(), delta.rows.begin(), delta.rows.end());
  int64_t new_epoch = storage_.BumpEpoch(meta->name);

  // Phase 3: merge the delta aggregates into the materialized tables.
  for (Pending& pending : incremental) {
    engine::Relation* stored = storage_.FindTableMutable(pending.st->name);
    if (stored == nullptr) {
      return Status::Internal("summary table data missing");
    }
    if (pending.plan.spj_append) {
      stored->rows.insert(stored->rows.end(),
                          pending.delta_result.rows.begin(),
                          pending.delta_result.rows.end());
      continue;
    }
    std::unordered_map<Row, size_t, RowHash> index;
    index.reserve(stored->rows.size());
    auto key_of = [&pending](const Row& row) {
      Row key;
      key.reserve(pending.plan.key_cols.size());
      for (int c : pending.plan.key_cols) key.push_back(row[c]);
      return key;
    };
    for (size_t i = 0; i < stored->rows.size(); ++i) {
      index.emplace(key_of(stored->rows[i]), i);
    }
    for (Row& drow : pending.delta_result.rows) {
      auto it = index.find(key_of(drow));
      if (it == index.end()) {
        index.emplace(key_of(drow), stored->rows.size());
        stored->rows.push_back(std::move(drow));
        continue;
      }
      Row& existing = stored->rows[it->second];
      for (const MergePlan::AggCol& agg : pending.plan.agg_cols) {
        existing[agg.col] =
            MergeValues(agg.func, existing[agg.col], drow[agg.col]);
      }
    }
  }

  // The merged ASTs now reflect the appended data: advance their recorded
  // epoch for this table (other base tables' lags, if any, are untouched)
  // and lift any quarantine — maintenance just succeeded.
  for (Pending& pending : incremental) {
    pending.st->materialized_epochs[meta->name] = new_epoch;
    pending.st->consecutive_failures = 0;
    pending.st->disabled = false;
  }

  // Phase 4: full recomputation for the rest. A refresh failure marks the
  // AST (stale, failure counted toward quarantine) but does not fail the
  // append: the base data is already in, and the rewriter will simply stop
  // routing through the un-refreshed table.
  for (SummaryTable* st : recompute) {
    auto start = std::chrono::steady_clock::now();
    Status refreshed = RefreshSummaryTable(st->name);
    auto end = std::chrono::steady_clock::now();
    double millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (!refreshed.ok()) {
      RecordAstFailure(st);
      report.entries.push_back(RefreshEntry{st->name, RefreshMode::kFailed,
                                            millis, refreshed.ToString()});
      continue;
    }
    report.entries.push_back(
        RefreshEntry{st->name, RefreshMode::kRecompute, millis, ""});
  }
  return report;
}

}  // namespace sumtab
