// Summary-table maintenance (paper related problem (c)): insert-delta
// propagation in the style of Mumick et al., "Maintenance of Data Cubes and
// Summary Tables in a Warehouse" (the paper's reference [10]).
//
// For a mergeable AST — a single aggregate block whose root projects the
// GROUP-BY outputs untouched — the delta rows are aggregated by executing
// the AST's own QGM graph with the appended table overridden by the delta,
// and the per-group results merge into the materialized table: COUNT/SUM
// add, MIN/MAX combine, new groups append. Anything else (HAVING, DISTINCT
// aggregates, scalar subqueries, self-references, nested blocks) recomputes.
#include "sumtab/maintenance.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/reject_reason.h"
#include "common/str_util.h"
#include "engine/column_vector.h"
#include "engine/executor.h"
#include "expr/expr_rewrite.h"
#include "sumtab/database.h"
#include "wal/wal.h"

namespace sumtab {
namespace maintenance {

StatusOr<MergePlan> AnalyzeMergePlan(const qgm::Graph& graph,
                                     const std::string& delta_table) {
  int references = 0;
  bool has_group_by = false;
  for (qgm::BoxId id : graph.TopologicalOrder()) {
    const qgm::Box* box = graph.box(id);
    if (box->kind == qgm::Box::Kind::kBase &&
        box->table_name == delta_table) {
      ++references;
    }
    if (box->IsGroupBy()) has_group_by = true;
    if (box->distinct) {
      return RejectUnsupported(RejectReason::kMaintDistinctBlock,
                               "DISTINCT block");
    }
    for (const qgm::Quantifier& q : box->quantifiers) {
      if (q.kind == qgm::Quantifier::Kind::kScalar) {
        return RejectUnsupported(RejectReason::kMaintScalarSubquery,
                                 "scalar subquery");
      }
    }
  }
  if (references != 1) {
    // The caller tells "unaffected" (0 refs) from "self-join" (>1) by
    // counting references itself, keyed on this subcode.
    return RejectUnsupported(RejectReason::kMaintDeltaRefCount,
                             "appended table referenced != 1 time");
  }

  const qgm::Box* root = graph.box(graph.root());
  if (root->kind != qgm::Box::Kind::kSelect || root->quantifiers.empty()) {
    return RejectUnsupported(RejectReason::kMaintRootShape,
                             "unexpected root shape");
  }
  MergePlan plan;
  if (!has_group_by) {
    // Select-project-join AST: for an insert-only delta over a table
    // referenced exactly once, delta(R join S) == deltaR join S, so the
    // delta's SPJ result appends directly. This holds for any number of
    // root quantifiers (all are kForeach — scalars were rejected above).
    plan.spj_append = true;
    return plan;
  }
  // Aggregate path: one aggregate block — SELECT root over a single
  // GROUP-BY over a SELECT over base tables.
  if (root->quantifiers.size() != 1) {
    // A join above (or beside) the aggregation consumes summary rows more
    // than once; merging deltas into it is not linear. Explicitly rejected
    // rather than inferred from quantifiers[0]'s kind.
    return RejectUnsupported(RejectReason::kMaintMultiQuantifierRoot,
                             "aggregate root has multiple quantifiers");
  }
  if (!root->predicates.empty()) {
    // HAVING filters rows whose aggregates a delta may push across the
    // threshold; merging cannot resurrect filtered groups.
    return RejectUnsupported(RejectReason::kMaintHavingPredicate,
                             "HAVING predicate");
  }
  const qgm::Box* gb = graph.box(root->quantifiers[0].child);
  if (!gb->IsGroupBy()) {
    return RejectUnsupported(RejectReason::kMaintAggBelowJoin,
                             "aggregation below a join");
  }
  // Exactly one aggregate block: nothing below the GROUP-BY's select may
  // group again.
  const qgm::Box* lower = graph.box(gb->quantifiers[0].child);
  if (lower->kind != qgm::Box::Kind::kSelect) {
    return RejectUnsupported(RejectReason::kMaintGroupByChildNotSelect,
                             "GROUP-BY child is not a SELECT");
  }
  for (const qgm::Quantifier& q : lower->quantifiers) {
    if (graph.box(q.child)->kind != qgm::Box::Kind::kBase) {
      return RejectUnsupported(RejectReason::kMaintNestedBlock,
                               "nested query block");
    }
  }
  if (!gb->IsSimpleGroupBy()) {
    // CUBE/ROLLUP/GROUPING SETS merge per-cuboid: a delta row's NULL
    // pattern identifies its cuboid, so the keyed merge lands each delta
    // row on its own cuboid's groups — unless a grouping column can be
    // NULL in the *data*, where a data-NULL in one cuboid and the padding
    // NULL of a coarser cuboid produce the same key and the merge would
    // combine rows across cuboids (a recompute keeps them separate).
    // Nullability must come from the grouping source below the GROUP-BY:
    // the GROUP-BY's own column_info already folds in padding nullability.
    for (int i = 0; i < gb->NumOutputs(); ++i) {
      if (!gb->IsGroupingOutput(i)) continue;
      int col = -1;
      bool source_nullable = true;  // conservatively reject odd shapes
      if (expr::IsSimpleColumnRef(gb->outputs[i].expr, 0, &col) && col >= 0 &&
          col < static_cast<int>(lower->column_info.size())) {
        source_nullable = lower->column_info[col].nullable;
      }
      if (source_nullable) {
        return RejectUnsupported(
            RejectReason::kMaintMultiGroupingSet,
            "nullable grouping column '" + gb->outputs[i].name +
                "' under multiple grouping sets");
      }
    }
  }
  // Root outputs must be bare references to GROUP-BY outputs.
  std::vector<bool> key_projected(gb->outputs.size(), false);
  for (size_t i = 0; i < root->outputs.size(); ++i) {
    int col = -1;
    if (!expr::IsSimpleColumnRef(root->outputs[i].expr, 0, &col)) {
      return RejectUnsupported(RejectReason::kMaintComputedOutput,
                               "computed expression above the aggregate");
    }
    if (gb->IsGroupingOutput(col)) {
      plan.key_cols.push_back(static_cast<int>(i));
      key_projected[col] = true;
      continue;
    }
    const expr::ExprPtr& agg = gb->outputs[col].expr;
    if (agg->agg_distinct) {
      return RejectUnsupported(RejectReason::kMaintDistinctAggregate,
                               "DISTINCT aggregate");
    }
    switch (agg->agg) {
      case expr::AggFunc::kCount:
      case expr::AggFunc::kSum:
      case expr::AggFunc::kMin:
      case expr::AggFunc::kMax:
        break;
      default:
        return RejectUnsupported(RejectReason::kMaintNonMergeableAggregate,
                                 "non-mergeable aggregate");
    }
    plan.agg_cols.push_back(MergePlan::AggCol{static_cast<int>(i), agg->agg});
  }
  // The merge is keyed on the projected grouping columns; if the root drops
  // one, distinct groups alias in the materialized table and deltas would
  // merge into whichever row the key index found first.
  for (int i = 0; i < gb->NumOutputs(); ++i) {
    if (gb->IsGroupingOutput(i) && !key_projected[i]) {
      return RejectUnsupported(RejectReason::kMaintPartialGroupKey,
                               "root does not project grouping column '" +
                                   gb->outputs[i].name + "'");
    }
  }
  return plan;
}

Value MergeAggregateValues(expr::AggFunc func, const Value& current,
                           const Value& delta) {
  // NULL identity: SUM/MIN/MAX over an all-NULL partition is NULL, and the
  // accumulator ignores NULL partitions when combining — so does the merge.
  if (current.is_null()) return delta;
  if (delta.is_null()) return current;
  switch (func) {
    case expr::AggFunc::kCount:
      return Value::Int(current.AsInt() + delta.AsInt());
    case expr::AggFunc::kSum:
      // Accumulator-combine semantics: the result is Double iff either
      // partition saw a double (sticky-double promotion), else Int.
      if (current.kind() == Value::Kind::kInt &&
          delta.kind() == Value::Kind::kInt) {
        return Value::Int(current.AsInt() + delta.AsInt());
      }
      return Value::Double(current.ToDouble() + delta.ToDouble());
    case expr::AggFunc::kMin:
      return delta < current ? delta : current;
    case expr::AggFunc::kMax:
      return current < delta ? delta : current;
    default:
      return current;
  }
}

}  // namespace maintenance

namespace {

using maintenance::AnalyzeMergePlan;
using maintenance::MergeAggregateValues;
using maintenance::MergePlan;

}  // namespace

Status Database::RefreshSummaryTable(const std::string& name) {
  std::lock_guard<std::mutex> maint(maint_mu_);
  SummaryTablePtr st;
  {
    // The registry is mutated only under both locks; shared suffices here.
    std::shared_lock<std::shared_mutex> lock(ddl_mu_);
    st = FindSummaryTable(name);
  }
  if (st == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  // Logged before the recompute runs: a refresh that fails after this point
  // fails identically on replay (deterministic against the same state), so
  // the recovered AST lands in the same stale-with-failure state.
  SUMTAB_RETURN_NOT_OK(LogNameOp(
      static_cast<uint8_t>(wal::RecordType::kRefreshSummary), st->name));
  Status refreshed = RefreshUnderMaint(st.get());
  MaybeCheckpointLocked();
  return refreshed;
}

Status Database::RefreshUnderMaint(SummaryTable* st) {
  SUMTAB_FAULT_POINT("maintenance/refresh");
  // Recompute without ddl_mu_: maint_mu_ excludes every other writer, so
  // storage is stable and concurrent queries keep planning while the (full)
  // re-aggregation runs.
  engine::ExecOptions exec_options;
  exec_options.vectorized = options_.vectorized_maintenance;
  engine::Executor executor(storage_, exec_options);
  SUMTAB_ASSIGN_OR_RETURN(engine::Relation data, executor.Execute(st->graph));
  const engine::Relation* stored = storage_.FindTable(st->name);
  if (stored == nullptr) {
    return Status::Internal("summary table data missing");
  }
  engine::Relation updated;
  updated.column_names = stored->column_names;
  updated.rows = std::move(data.rows);
  {
    // Copy-on-write commit: queries pinned to the old version keep it.
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    SUMTAB_RETURN_NOT_OK(storage_.Replace(st->name, std::move(updated)));
    // A successful recompute is the one event that both re-captures the base
    // epochs and lifts a quarantine.
    MarkRefreshed(st);
  }
  // The refresh absorbed every retained delta of its base tables up to the
  // epochs just recorded; drop the slices no other AST still needs.
  for (const auto& entry : st->materialized_epochs) {
    PruneAbsorbedDeltas(entry.first);
  }
  return Status::OK();
}

StatusOr<Database::MaintenanceReport> Database::Append(
    const std::string& table, std::vector<Row> rows,
    const AppendOptions& append_options) {
  // maint_mu_ serializes the whole append-and-maintain transaction against
  // other mutators; ddl_mu_ is taken exclusively only for the commit window
  // below, after every new version has been built. Concurrent queries either
  // planned before the commit (and execute against their pinned pre-append
  // snapshot) or plan after the base table and every incrementally-merged
  // AST published together — they never observe the base table appended but
  // a dependent AST unmerged. ASTs on the recompute path go visibly stale at
  // the commit (their epochs lag) and stop serving rewrites until phase 4
  // refreshes them; answers stay correct throughout, from base tables.
  std::lock_guard<std::mutex> maint(maint_mu_);
  const catalog::Table* meta = catalog_.FindTable(table);
  if (meta == nullptr) {
    return Status::NotFound("table '" + table + "'");
  }
  if (meta->is_summary_table) {
    return Status::InvalidArgument("cannot append to a summary table");
  }
  for (const Row& row : rows) {
    if (row.size() != meta->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
  }
  engine::Relation delta;
  const engine::Relation* stored_base = storage_.FindTable(table);
  delta.column_names = stored_base->column_names;
  delta.rows = std::move(rows);
  // Workload telemetry: the advisor charges candidates their maintenance
  // cost from this observed append rate. Recording during replay is correct
  // — a restored checkpoint covers appends up to its last_lsn only.
  const int64_t appended_rows = static_cast<int64_t>(delta.rows.size());

  MaintenanceReport report;

  // Deferred maintenance: publish the base rows and RETAIN the appended
  // slice, but leave dependent ASTs untouched. Their epochs now lag by a
  // pure-append delta with full coverage, so the rewriter can still answer
  // exactly through them via delta compensation; a later Refresh (or eager
  // append) absorbs the slices. This trades per-append maintenance cost for
  // per-query compensation cost — the ingest-heavy end of the paper's
  // maintenance spectrum.
  if (!append_options.maintain) {
    SUMTAB_RETURN_NOT_OK(
        LogRowsOp(static_cast<uint8_t>(wal::RecordType::kAppendDeferred),
                  meta->name, delta.rows));
    engine::Relation next_base = *stored_base;
    next_base.rows.insert(next_base.rows.end(), delta.rows.begin(),
                          delta.rows.end());
    {
      std::unique_lock<std::shared_mutex> lock(ddl_mu_);
      SUMTAB_RETURN_NOT_OK(storage_.Replace(meta->name, std::move(next_base)));
      int64_t new_epoch = storage_.BumpEpoch(meta->name);
      storage_.RetainDelta(meta->name, new_epoch, std::move(delta));
    }
    for (const auto& st : summary_tables_) {
      int refs = 0;
      for (qgm::BoxId id : st->graph.TopologicalOrder()) {
        const qgm::Box* box = st->graph.box(id);
        refs += box->kind == qgm::Box::Kind::kBase &&
                        box->table_name == meta->name
                    ? 1
                    : 0;
      }
      report.entries.push_back(RefreshEntry{
          st->name,
          refs == 0 ? RefreshMode::kUnaffected : RefreshMode::kDeferred, 0,
          ""});
    }
    for (const RefreshEntry& entry : report.entries) {
      MetricsRegistry::Global()
          .counter(entry.mode == RefreshMode::kDeferred
                       ? "maintenance.deferred"
                       : "maintenance.unaffected")
          ->Increment();
    }
    // No-op unless every dependent AST already covers the new epoch (e.g.
    // an append to a table no enabled AST reads).
    PruneAbsorbedDeltas(meta->name);
    workload_log_.RecordAppend(meta->name, appended_rows);
    MaybeCheckpointLocked();
    return report;
  }

  // Vectorized maintenance scans a prebuilt columnar delta: encoded once
  // against the base table's dictionaries (so joins and group keys land on
  // the table's shared codes) and reused by every AST's phase-1 evaluation
  // instead of re-converting the delta rows per AST.
  std::map<std::string, std::shared_ptr<const engine::Batch>> delta_columnar;
  if (options_.vectorized_maintenance) {
    auto batch = std::make_shared<engine::Batch>(
        engine::BatchFromRows(delta.rows, delta.NumColumns()));
    engine::DictEncodeBatch(batch.get(), storage_.DictSeeds(meta->name));
    delta_columnar[meta->name] = std::move(batch);
  }

  // Phase 1: aggregate the delta through every incrementally-maintainable
  // AST (reads dimensions from storage, the appended table from the delta).
  // Storage and the registry are stable under maint_mu_ alone.
  struct Pending {
    SummaryTable* st;
    MergePlan plan;
    engine::Relation delta_result;
    engine::Relation merged;  // built in phase 3, published at the commit
  };
  std::vector<Pending> incremental;
  std::vector<SummaryTable*> recompute;
  for (const auto& st : summary_tables_) {
    auto start = std::chrono::steady_clock::now();
    StatusOr<MergePlan> plan = AnalyzeMergePlan(st->graph, meta->name);
    if (!plan.ok()) {
      bool unaffected = false;
      if (RejectReasonFromStatus(plan.status()) ==
          RejectReason::kMaintDeltaRefCount) {
        // Distinguish 0 references (unaffected) from self-joins.
        int refs = 0;
        for (qgm::BoxId id : st->graph.TopologicalOrder()) {
          const qgm::Box* box = st->graph.box(id);
          refs += box->kind == qgm::Box::Kind::kBase &&
                          box->table_name == meta->name
                      ? 1
                      : 0;
        }
        unaffected = refs == 0;
      }
      if (unaffected) {
        report.entries.push_back(
            RefreshEntry{st->name, RefreshMode::kUnaffected, 0, ""});
      } else {
        recompute.push_back(st.get());
      }
      continue;
    }
    if (StalenessOf(*st) > 0) {
      // The AST is already stale (e.g. a BulkLoad without refresh): its
      // materialization is missing earlier rows, so merging just this delta
      // and stamping the new epoch would mark it fresh while still wrong.
      // Route it to a full recompute instead.
      recompute.push_back(st.get());
      continue;
    }
    std::map<std::string, const engine::Relation*> overrides;
    overrides[meta->name] = &delta;
    engine::ExecOptions options;
    options.table_overrides = &overrides;
    options.vectorized = options_.vectorized_maintenance;
    if (!delta_columnar.empty()) options.columnar_overrides = &delta_columnar;
    engine::Executor executor(storage_, options);
    Status injected = FaultInjector::Instance().Check("maintenance/incremental");
    StatusOr<engine::Relation> delta_eval =
        injected.ok() ? executor.Execute(st->graph)
                      : StatusOr<engine::Relation>(std::move(injected));
    if (!delta_eval.ok()) {
      // Incremental path broke; fall back to full recomputation rather than
      // failing the append.
      recompute.push_back(st.get());
      continue;
    }
    engine::Relation delta_result = std::move(*delta_eval);
    auto end = std::chrono::steady_clock::now();
    Pending pending;
    pending.st = st.get();
    pending.plan = std::move(*plan);
    pending.delta_result = std::move(delta_result);
    incremental.push_back(std::move(pending));
    report.entries.push_back(RefreshEntry{
        st->name, RefreshMode::kIncremental,
        std::chrono::duration<double, std::milli>(end - start).count(), ""});
  }

  // Phase 2: build the base table's next copy-on-write version offline (the
  // full-table copy is the expensive part of an append — it must not happen
  // under ddl_mu_).
  engine::Relation next_base = *stored_base;
  next_base.rows.insert(next_base.rows.end(), delta.rows.begin(),
                        delta.rows.end());

  // Phase 3: merge the delta aggregates into copies of the materialized
  // tables, still offline.
  for (Pending& pending : incremental) {
    const engine::Relation* current = storage_.FindTable(pending.st->name);
    if (current == nullptr) {
      return Status::Internal("summary table data missing");
    }
    pending.merged = *current;
    engine::Relation& merged = pending.merged;
    if (pending.plan.spj_append) {
      merged.rows.insert(merged.rows.end(),
                         pending.delta_result.rows.begin(),
                         pending.delta_result.rows.end());
      continue;
    }
    std::unordered_map<Row, size_t, RowHash> index;
    index.reserve(merged.rows.size());
    auto key_of = [&pending](const Row& row) {
      Row key;
      key.reserve(pending.plan.key_cols.size());
      for (int c : pending.plan.key_cols) key.push_back(row[c]);
      return key;
    };
    for (size_t i = 0; i < merged.rows.size(); ++i) {
      index.emplace(key_of(merged.rows[i]), i);
    }
    for (Row& drow : pending.delta_result.rows) {
      auto it = index.find(key_of(drow));
      if (it == index.end()) {
        index.emplace(key_of(drow), merged.rows.size());
        merged.rows.push_back(std::move(drow));
        continue;
      }
      Row& existing = merged.rows[it->second];
      for (const MergePlan::AggCol& agg : pending.plan.agg_cols) {
        existing[agg.col] =
            MergeAggregateValues(agg.func, existing[agg.col], drow[agg.col]);
      }
    }
  }

  // Log + harden before publishing anything: every phase so far was pure
  // offline computation, so a crash up to here means the append never
  // happened; a crash after the harden replays it in full — base rows,
  // incremental merges, and recomputes — through this same code path.
  SUMTAB_RETURN_NOT_OK(LogRowsOp(
      static_cast<uint8_t>(wal::RecordType::kAppend), meta->name, delta.rows));

  // Commit: publish the appended base and every merged AST, bump the epoch,
  // and advance the merged ASTs' recorded epochs (lifting any quarantine —
  // maintenance just succeeded) in ONE exclusive window. The window is pure
  // pointer swaps and map updates: queries see pre-append or post-append
  // state, never the base appended with a dependent AST unmerged.
  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    SUMTAB_RETURN_NOT_OK(storage_.Replace(meta->name, std::move(next_base)));
    int64_t new_epoch = storage_.BumpEpoch(meta->name);
    // Retain the slice even on the eager path: if a phase-4 recompute fails
    // below, the AST it leaves stale is still exactly one pure-append epoch
    // behind — compensatable instead of unusable. Absorbed slices are pruned
    // right after phase 4.
    storage_.RetainDelta(meta->name, new_epoch, std::move(delta));
    for (Pending& pending : incremental) {
      SUMTAB_RETURN_NOT_OK(
          storage_.Replace(pending.st->name, std::move(pending.merged)));
      pending.st->materialized_epochs[meta->name] = new_epoch;
      pending.st->consecutive_failures = 0;
      pending.st->disabled = false;
    }
  }

  // Phase 4: full recomputation for the rest. A refresh failure marks the
  // AST (stale, failure counted toward quarantine) but does not fail the
  // append: the base data is already in, and the rewriter will simply stop
  // routing through the un-refreshed table.
  for (SummaryTable* st : recompute) {
    auto start = std::chrono::steady_clock::now();
    Status refreshed = RefreshUnderMaint(st);
    auto end = std::chrono::steady_clock::now();
    double millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (!refreshed.ok()) {
      RecordAstFailure(st);
      report.entries.push_back(RefreshEntry{st->name, RefreshMode::kFailed,
                                            millis, refreshed.ToString()});
      continue;
    }
    report.entries.push_back(
        RefreshEntry{st->name, RefreshMode::kRecompute, millis, ""});
  }
  for (const RefreshEntry& entry : report.entries) {
    const char* mode = "unknown";
    switch (entry.mode) {
      case RefreshMode::kUnaffected:
        mode = "unaffected";
        break;
      case RefreshMode::kIncremental:
        mode = "incremental";
        break;
      case RefreshMode::kRecompute:
        mode = "recompute";
        break;
      case RefreshMode::kFailed:
        mode = "failed";
        break;
      case RefreshMode::kDeferred:
        mode = "deferred";  // unreachable on the eager path
        break;
    }
    MetricsRegistry::Global()
        .counter(std::string("maintenance.") + mode)
        ->Increment();
  }
  PruneAbsorbedDeltas(meta->name);
  workload_log_.RecordAppend(meta->name, appended_rows);
  MaybeCheckpointLocked();
  return report;
}

void Database::PruneAbsorbedDeltas(const std::string& table) {
  // Caller holds maint_mu_ (the registry and materialized epochs are
  // stable); ddl_mu_ is taken here for the storage mutation. Disabled ASTs
  // do not pin slices — compensation never routes through quarantine.
  std::string key = ToLower(table);
  int64_t min_epoch = storage_.Epoch(key);
  for (const auto& st : summary_tables_) {
    if (st->disabled.load(std::memory_order_acquire)) continue;
    auto it = st->materialized_epochs.find(key);
    if (it == st->materialized_epochs.end()) continue;
    min_epoch = std::min(min_epoch, it->second);
  }
  std::unique_lock<std::shared_mutex> lock(ddl_mu_);
  storage_.PruneDeltasThrough(key, min_epoch);
}

}  // namespace sumtab
