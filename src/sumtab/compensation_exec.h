// Runtime for delta-compensation plans (matching/compensation.h): executes
// the two legs against one pinned snapshot, merges them through the same
// MergeAggregateValues core incremental maintenance uses, then applies the
// residual projections / HAVING / ORDER BY the plan carried out of the
// original query root.
#ifndef SUMTAB_SUMTAB_COMPENSATION_EXEC_H_
#define SUMTAB_SUMTAB_COMPENSATION_EXEC_H_

#include <cstdint>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/relation.h"
#include "matching/compensation.h"

namespace sumtab {
namespace compensation {

/// Executes `plan` against `snap` (which must pin delta coverage for the
/// plan's epoch range — the planner checked; a pinned snapshot cannot lose
/// slices). `options` flows to both legs — vectorized / parallel / budget
/// settings apply to each — except table_overrides, which this function owns
/// (the delta leg overrides the stale table with the concatenated retained
/// slices). `delta_rows_scanned` (optional) receives the number of delta
/// rows the compensation leg read.
StatusOr<engine::Relation> ExecuteCompensationPlan(
    const matching::CompensationPlan& plan,
    const engine::Storage::Snapshot& snap, const engine::ExecOptions& options,
    int64_t* delta_rows_scanned = nullptr);

}  // namespace compensation
}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_COMPENSATION_EXEC_H_
