#include "sumtab/database.h"

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "matching/rewriter.h"
#include "qgm/qgm_builder.h"
#include "qgm/qgm_print.h"
#include "qgm/qgm_to_sql.h"
#include "sql/parser.h"

namespace sumtab {

namespace {

/// Names of the tables scanned at the leaves of an AST definition.
std::vector<std::string> LeafTables(const qgm::Graph& graph) {
  std::vector<std::string> tables;
  for (int id = 0; id < graph.size(); ++id) {
    const qgm::Box* box = graph.box(id);
    if (box->kind != qgm::Box::Kind::kBase) continue;
    bool seen = false;
    for (const std::string& t : tables) seen = seen || t == box->table_name;
    if (!seen) tables.push_back(box->table_name);
  }
  return tables;
}

}  // namespace

Database::Database() = default;
Database::~Database() = default;

Status Database::CreateTable(const std::string& name,
                             const std::vector<catalog::Column>& columns,
                             const std::vector<std::string>& primary_key) {
  catalog::Table table;
  table.name = name;
  table.columns = columns;
  table.primary_key = primary_key;
  SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
  engine::Relation empty;
  for (const catalog::Column& col : columns) {
    empty.column_names.push_back(ToLower(col.name));
  }
  return storage_.AddTable(name, std::move(empty));
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_column,
                               const std::string& parent_table,
                               const std::string& parent_column) {
  return catalog_.AddForeignKey(child_table, child_column, parent_table,
                                parent_column);
}

Status Database::BulkLoad(const std::string& table, std::vector<Row> rows) {
  const engine::Relation* existing = storage_.FindTable(table);
  if (existing == nullptr) {
    return Status::NotFound("table '" + table + "'");
  }
  const catalog::Table* meta = catalog_.FindTable(table);
  for (const Row& row : rows) {
    if (row.size() != meta->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
  }
  engine::Relation updated = *existing;
  for (Row& row : rows) updated.rows.push_back(std::move(row));
  SUMTAB_RETURN_NOT_OK(storage_.DropTable(table));
  SUMTAB_RETURN_NOT_OK(storage_.AddTable(table, std::move(updated)));
  // BulkLoad deliberately does not maintain summary tables; bumping the
  // epoch is what flips dependent ASTs to kStale so the rewriter stops
  // serving pre-load answers through them.
  storage_.BumpEpoch(table);
  return Status::OK();
}

StatusOr<int64_t> Database::DefineSummaryTable(const std::string& name,
                                               const std::string& sql) {
  if (catalog_.FindTable(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));

  // Materialize.
  engine::Executor executor(storage_);
  SUMTAB_ASSIGN_OR_RETURN(engine::Relation data, executor.Execute(graph));
  int64_t rows = static_cast<int64_t>(data.NumRows());

  // Register in the catalog with inferred column types.
  const qgm::Box* root = graph.box(graph.root());
  catalog::Table table;
  table.name = name;
  table.is_summary_table = true;
  for (int i = 0; i < root->NumOutputs(); ++i) {
    catalog::Column col;
    col.name = root->outputs[i].name;
    col.type = root->column_info[i].type;
    col.nullable = root->column_info[i].nullable;
    table.columns.push_back(std::move(col));
  }
  SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
  SUMTAB_RETURN_NOT_OK(storage_.AddTable(name, std::move(data)));

  auto st = std::make_unique<SummaryTable>();
  st->name = ToLower(name);
  st->sql = sql;
  st->graph = std::move(graph);
  MarkRefreshed(st.get());
  summary_tables_.push_back(std::move(st));
  return rows;
}

Status Database::DropSummaryTable(const std::string& name) {
  std::string key = ToLower(name);
  for (size_t i = 0; i < summary_tables_.size(); ++i) {
    if (summary_tables_[i]->name == key) {
      summary_tables_.erase(summary_tables_.begin() + i);
      return storage_.DropTable(key);
      // Note: the catalog keeps the (now dangling) table entry out of
      // simplicity; queries naming it will fail at execution.
    }
  }
  return Status::NotFound("summary table '" + name + "'");
}

std::vector<std::string> Database::SummaryTableNames() const {
  std::vector<std::string> names;
  for (const auto& st : summary_tables_) names.push_back(st->name);
  return names;
}

int64_t Database::TableRows(const std::string& name) const {
  const engine::Relation* rel = storage_.FindTable(name);
  return rel == nullptr ? 0 : static_cast<int64_t>(rel->NumRows());
}

// ---- freshness bookkeeping ----

Database::SummaryTable* Database::FindSummaryTable(const std::string& name) {
  std::string key = ToLower(name);
  for (const auto& st : summary_tables_) {
    if (st->name == key) return st.get();
  }
  return nullptr;
}

const Database::SummaryTable* Database::FindSummaryTable(
    const std::string& name) const {
  return const_cast<Database*>(this)->FindSummaryTable(name);
}

int64_t Database::StalenessOf(const SummaryTable& st) const {
  int64_t lag = 0;
  for (const auto& [table, epoch] : st.materialized_epochs) {
    int64_t current = storage_.Epoch(table);
    if (current > epoch) lag += current - epoch;
  }
  return lag;
}

AstState Database::StateOf(const SummaryTable& st) const {
  if (st.disabled) return AstState::kDisabled;
  return StalenessOf(st) > 0 ? AstState::kStale : AstState::kFresh;
}

bool Database::UsableForRewrite(const SummaryTable& st,
                                bool allow_stale) const {
  if (st.disabled) return false;  // quarantine overrides everything
  int64_t lag = StalenessOf(st);
  return lag == 0 || lag <= st.max_staleness || allow_stale;
}

void Database::RecordAstFailure(SummaryTable* st) {
  if (++st->consecutive_failures >= kQuarantineThreshold) {
    st->disabled = true;
  }
}

void Database::MarkRefreshed(SummaryTable* st) {
  st->materialized_epochs.clear();
  for (const std::string& table : LeafTables(st->graph)) {
    st->materialized_epochs[ToLower(table)] = storage_.Epoch(table);
  }
  st->consecutive_failures = 0;
  st->disabled = false;
}

StatusOr<SummaryTableInfo> Database::GetSummaryTableInfo(
    const std::string& name) const {
  const SummaryTable* st = FindSummaryTable(name);
  if (st == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  SummaryTableInfo info;
  info.name = st->name;
  info.state = StateOf(*st);
  info.staleness = StalenessOf(*st);
  info.max_staleness = st->max_staleness;
  info.consecutive_failures = st->consecutive_failures;
  return info;
}

Status Database::SetMaxStaleness(const std::string& name,
                                 int64_t max_epoch_lag) {
  if (max_epoch_lag < 0) {
    return Status::InvalidArgument("max staleness must be >= 0");
  }
  SummaryTable* st = FindSummaryTable(name);
  if (st == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  st->max_staleness = max_epoch_lag;
  return Status::OK();
}

std::unique_ptr<qgm::Graph> Database::TryRewrite(
    const qgm::Graph& query, const QueryOptions& options, std::string* chosen,
    int* candidates, std::vector<std::string>* used_asts,
    QueryDegradation* degradation) {
  *candidates = 0;
  // Cost heuristic: total rows scanned at the leaves.
  auto leaf_cost = [this](const qgm::Graph& graph) {
    int64_t cost = 0;
    for (int id = 0; id < graph.size(); ++id) {
      const qgm::Box* box = graph.box(id);
      if (box->kind == qgm::Box::Kind::kBase) {
        cost += TableRows(box->table_name);
      }
    }
    return cost;
  };

  // Iterative rerouting (paper Sec. 7): match the best AST, then feed the
  // rewritten query back through the remaining ASTs — distinct subtrees
  // (e.g. a scalar subquery and the main block) can each land on their own
  // summary table.
  std::unique_ptr<qgm::Graph> current;
  int64_t current_cost = leaf_cost(query);
  std::vector<std::string> used;
  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::unique_ptr<qgm::Graph> best;
    int64_t best_cost = current_cost;
    std::string best_name;
    for (const auto& st : summary_tables_) {
      if (!UsableForRewrite(*st, options.allow_stale_reads)) continue;
      matching::SummaryTableDef def{st->name, &st->graph};
      StatusOr<matching::RewriteResult> rewrite = matching::RewriteQuery(
          current != nullptr ? *current : query, def, catalog_);
      if (!rewrite.ok()) {
        // A broken AST must not take down the search: skip it, count the
        // failure toward quarantine, and surface the event as degradation.
        RecordAstFailure(st.get());
        degradation->degraded = true;
        degradation->stage = "rewrite";
        if (!degradation->summary_table.empty()) {
          degradation->summary_table += "+";
        }
        degradation->summary_table += st->name;
        if (!degradation->message.empty()) degradation->message += "; ";
        degradation->message += rewrite.status().ToString();
        continue;
      }
      if (!rewrite->rewritten) continue;
      if (round == 0) ++*candidates;
      int64_t cost = leaf_cost(rewrite->graph);
      // The first round takes any match (<=): even a same-size SPJ summary
      // table is worth using (filters/expressions are precomputed). Later
      // rounds demand strict improvement so the iteration terminates.
      bool acceptable = best == nullptr
                            ? (round == 0 ? cost <= current_cost
                                          : cost < current_cost)
                            : cost < best_cost;
      if (acceptable) {
        best = std::make_unique<qgm::Graph>(std::move(rewrite->graph));
        best_cost = cost;
        best_name = st->name;
      }
    }
    if (best == nullptr) break;
    current = std::move(best);
    current_cost = best_cost;
    if (used.empty() || used.back() != best_name) used.push_back(best_name);
  }
  *chosen = Join(used, "+");
  *used_asts = std::move(used);
  return current;
}

StatusOr<QueryResult> Database::Query(const std::string& sql,
                                      const QueryOptions& options) {
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));

  QueryResult result;
  const qgm::Graph* to_run = &graph;
  std::unique_ptr<qgm::Graph> rewritten;
  std::vector<std::string> used;
  if (options.enable_rewrite) {
    std::string chosen;
    rewritten = TryRewrite(graph, options, &chosen, &result.candidate_rewrites,
                           &used, &result.degradation);
    if (rewritten != nullptr) {
      StatusOr<std::string> new_sql = qgm::ToSql(*rewritten);
      if (new_sql.ok()) {
        result.used_summary_table = true;
        result.summary_table = chosen;
        result.rewritten_sql = std::move(*new_sql);
        to_run = rewritten.get();
      } else {
        // The rewrite can't be rendered/executed: degrade to base tables.
        for (const std::string& name : used) {
          if (SummaryTable* st = FindSummaryTable(name)) RecordAstFailure(st);
        }
        result.degradation.degraded = true;
        result.degradation.stage = "rewrite";
        result.degradation.summary_table = chosen;
        if (!result.degradation.message.empty()) {
          result.degradation.message += "; ";
        }
        result.degradation.message += new_sql.status().ToString();
        rewritten.reset();
      }
    }
  }
  engine::ExecOptions exec_options;
  exec_options.disable_hash_join = options.disable_hash_join;
  exec_options.max_rows = options.max_rows;
  exec_options.timeout_millis = options.timeout_millis;
  engine::Executor executor(storage_, exec_options);
  StatusOr<engine::Relation> data = executor.Execute(*to_run);
  if (!data.ok() && to_run != &graph) {
    // Graceful degradation: the rewritten plan failed, so fall back to the
    // base tables — a summary table is an optimization, never a requirement.
    for (const std::string& name : used) {
      if (SummaryTable* st = FindSummaryTable(name)) RecordAstFailure(st);
    }
    result.degradation.degraded = true;
    result.degradation.stage = "execute";
    result.degradation.summary_table = result.summary_table;
    if (!result.degradation.message.empty()) result.degradation.message += "; ";
    result.degradation.message += data.status().ToString();
    result.used_summary_table = false;
    result.summary_table.clear();
    result.rewritten_sql.clear();
    engine::Executor retry(storage_, exec_options);
    data = retry.Execute(graph);
  }
  if (!data.ok()) return data.status();
  if (result.used_summary_table) {
    // Serving through the AST(s) worked: clear their failure streaks.
    for (const std::string& name : used) {
      if (SummaryTable* st = FindSummaryTable(name)) {
        st->consecutive_failures = 0;
      }
    }
  }
  result.relation = std::move(*data);
  return result;
}

StatusOr<std::string> Database::Explain(const std::string& sql) {
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));
  std::string out = "-- original QGM --\n" + qgm::ToString(graph);
  std::string chosen;
  int candidates = 0;
  std::vector<std::string> used;
  QueryDegradation degradation;
  int skipped = 0;
  for (const auto& st : summary_tables_) {
    if (!UsableForRewrite(*st, /*allow_stale=*/false)) ++skipped;
  }
  std::unique_ptr<qgm::Graph> rewritten = TryRewrite(
      graph, QueryOptions{}, &chosen, &candidates, &used, &degradation);
  out += "-- candidate rewrites: " + std::to_string(candidates) + "\n";
  if (skipped > 0) {
    out += "-- skipped " + std::to_string(skipped) +
           " stale/quarantined summary table(s)\n";
  }
  if (degradation.degraded) {
    out += "-- degraded (" + degradation.stage + "): " + degradation.message +
           "\n";
  }
  if (rewritten == nullptr) {
    out += "-- no summary table matches; executing against base tables\n";
    return out;
  }
  out += "-- rerouted through summary table: " + chosen + "\n";
  out += "-- rewritten QGM --\n" + qgm::ToString(*rewritten);
  SUMTAB_ASSIGN_OR_RETURN(std::string new_sql, qgm::ToSql(*rewritten));
  out += "-- rewritten SQL --\n" + new_sql + "\n";
  return out;
}

}  // namespace sumtab
