#include "sumtab/database.h"

#include <algorithm>

#include "advisor/advisor.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/reject_reason.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "matching/rewriter.h"
#include "qgm/qgm_builder.h"
#include "qgm/qgm_print.h"
#include "qgm/qgm_to_sql.h"
#include "sql/parser.h"
#include "sumtab/compensation_exec.h"
#include "sumtab/maintenance.h"
#include "wal/wal.h"

namespace sumtab {

namespace {

/// Leaf-scan cost of a graph against a pinned snapshot: total rows of every
/// scanned base table. Same heuristic TryRewrite costs candidates with; here
/// it prices the query's base-table form for the workload log.
int64_t LeafRowCost(const qgm::Graph& graph,
                    const engine::Storage::Snapshot& snap) {
  int64_t cost = 0;
  for (int id = 0; id < graph.size(); ++id) {
    const qgm::Box* box = graph.box(id);
    if (box->kind != qgm::Box::Kind::kBase) continue;
    const engine::Relation* rel = snap.FindTable(box->table_name);
    if (rel != nullptr) cost += static_cast<int64_t>(rel->NumRows());
  }
  return cost;
}

}  // namespace

Database::Database() : plan_cache_(kPlanCacheCapacity) {}
Database::~Database() = default;

// ---- rewrite-plan cache ----

std::string Database::PlanCacheKey(const std::string& sql,
                                   const QueryOptions& options) const {
  // Only options that change the *plan graph* belong in the key; execution
  // knobs (threads, budgets, join strategy) reuse the same entry.
  return NormalizeSqlText(sql) + "#rw=" + (options.enable_rewrite ? "1" : "0") +
         "#stale=" + (options.allow_stale_reads ? "1" : "0") +
         "#comp=" + (options.enable_compensation ? "1" : "0");
}

ShardedPlanCache::Validator Database::PlanValidator(
    const engine::Storage::Snapshot& snap, int64_t generation,
    const QueryOptions& options) const {
  // The captured references outlive the synchronous lookup only; the
  // validator must not be stored. Caller holds ddl_mu_, so the registry and
  // the epochs it consults cannot change mid-validation.
  return [this, &snap, generation, &options](
             const CachedPlan& entry) -> std::string {
    // "Stale but compensatable" entries pin a delta high-water mark: the
    // plan is exact only for the precise epoch range it was built over.
    // Checked FIRST so a refresh that absorbed the range (which also bumps
    // the generation) reports the specific cause, not the generic one.
    if (entry.compensation != nullptr) {
      const matching::CompensationPlan& comp = *entry.compensation;
      SummaryTablePtr st = FindSummaryTable(comp.summary_table);
      if (st == nullptr || st->disabled.load(std::memory_order_acquire)) {
        return "ast:" + comp.summary_table;
      }
      auto it = st->materialized_epochs.find(comp.stale_table);
      int64_t materialized =
          it == st->materialized_epochs.end() ? 0 : it->second;
      if (materialized != comp.from_epoch ||
          snap.Epoch(comp.stale_table) != comp.to_epoch ||
          !snap.HasDeltaCoverage(comp.stale_table, comp.from_epoch,
                                 comp.to_epoch)) {
        return "delta:" + comp.stale_table;
      }
    }
    // Generation captures DDL / AST-lifecycle changes since planning.
    if (entry.generation != generation) return "generation";
    // Any epoch bump of a base table the original query scans invalidates:
    // a spliced-in AST may now be stale, and even the relative costs that
    // picked this plan have changed.
    for (const auto& [table, epoch] : entry.base_epochs) {
      if (snap.Epoch(table) != epoch) return "epoch:" + table;
    }
    // The ASTs this plan reads must still be serviceable under the *current*
    // options — a quarantined or newly-stale AST must not be served from
    // cache when a fresh search would have skipped it.
    for (const std::string& name : entry.used_asts) {
      // The compensated AST is *expected* to be stale — the compensation
      // block above already pinned its exact staleness window.
      if (entry.compensation != nullptr &&
          name == entry.compensation->summary_table) {
        continue;
      }
      SummaryTablePtr st = FindSummaryTable(name);
      if (st == nullptr || !UsableForRewrite(*st, options.allow_stale_reads)) {
        return "ast:" + name;
      }
    }
    return "";
  };
}

void Database::BumpGeneration() {
  catalog_generation_.fetch_add(1, std::memory_order_acq_rel);
}

DatabaseStats Database::Stats() const {
  ShardedPlanCache::Stats cache = plan_cache_.TotalStats();
  DatabaseStats stats;
  stats.plan_cache_hits = cache.hits;
  stats.plan_cache_misses = cache.misses;
  stats.plan_cache_invalidations = cache.invalidations;
  stats.plan_cache_entries = cache.entries;
  stats.catalog_generation = catalog_generation_.load(std::memory_order_acquire);
  stats.metrics = MetricsRegistry::Global().Snap();
  stats.durability.enabled = wal_ != nullptr;
  if (wal_ != nullptr) {
    stats.durability.last_lsn = wal_->last_lsn();
    stats.durability.durable_lsn = wal_->durable_lsn();
    stats.durability.wal_records = wal_->records_appended();
    stats.durability.wal_bytes = wal_->bytes_appended();
  }
  stats.durability.checkpoints_written =
      checkpoints_written_.load(std::memory_order_acquire);
  stats.durability.last_checkpoint_seq =
      checkpoint_seq_.load(std::memory_order_acquire);
  stats.durability.recovery_replayed_records = recovery_replayed_;
  stats.durability.recovery_truncated_bytes = recovery_truncated_bytes_;
  stats.durability.recovery_asts_dropped = recovery_asts_dropped_;
  stats.durability.recovery_deltas_dropped = recovery_deltas_dropped_;
  return stats;
}

Status Database::CreateTable(const std::string& name,
                             const std::vector<catalog::Column>& columns,
                             const std::vector<std::string>& primary_key) {
  std::lock_guard<std::mutex> maint(maint_mu_);
  catalog::Table table;
  table.name = name;
  table.columns = columns;
  table.primary_key = primary_key;
  // Pre-validate the checks Catalog::AddTable will apply, so only an
  // operation that will publish gets a WAL record (replay never sees a
  // record that would fail).
  if (catalog_.FindTable(name) != nullptr) {
    return Status::AlreadyExists("table '" + ToLower(name) + "'");
  }
  for (const std::string& pk : primary_key) {
    if (table.ColumnIndex(pk) < 0) {
      return Status::InvalidArgument("primary key column '" + ToLower(pk) +
                                     "' not in table '" + ToLower(name) + "'");
    }
  }
  SUMTAB_RETURN_NOT_OK(LogCreateTableOp(table));
  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
    engine::Relation empty;
    for (const catalog::Column& col : columns) {
      empty.column_names.push_back(ToLower(col.name));
    }
    SUMTAB_RETURN_NOT_OK(storage_.AddTable(name, std::move(empty)));
    BumpGeneration();
  }
  MaybeCheckpointLocked();
  return Status::OK();
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_column,
                               const std::string& parent_table,
                               const std::string& parent_column) {
  std::lock_guard<std::mutex> maint(maint_mu_);
  // Pre-validate (mirrors Catalog::AddForeignKey) so only an operation that
  // will publish gets logged.
  const catalog::Table* child = catalog_.FindTable(child_table);
  if (child == nullptr) {
    return Status::NotFound("table '" + ToLower(child_table) + "'");
  }
  if (catalog_.FindTable(parent_table) == nullptr) {
    return Status::NotFound("table '" + ToLower(parent_table) + "'");
  }
  if (child->ColumnIndex(child_column) < 0) {
    return Status::NotFound("column '" + ToLower(child_column) + "' in '" +
                            ToLower(child_table) + "'");
  }
  if (!catalog_.IsPrimaryKey(parent_table, parent_column)) {
    return Status::InvalidArgument(
        "FK must reference the parent's single-column primary key");
  }
  SUMTAB_RETURN_NOT_OK(
      LogForeignKeyOp(child_table, child_column, parent_table, parent_column));
  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    SUMTAB_RETURN_NOT_OK(catalog_.AddForeignKey(child_table, child_column,
                                                parent_table, parent_column));
    BumpGeneration();  // RI constraints feed the matcher's rejoin reasoning
  }
  MaybeCheckpointLocked();
  return Status::OK();
}

Status Database::BulkLoad(const std::string& table, std::vector<Row> rows) {
  // maint_mu_ (not ddl_mu_) covers the copy-on-write build: no other mutator
  // can touch storage/catalog meanwhile, and readers only read, so the
  // full-table copy runs without stalling query planning.
  std::lock_guard<std::mutex> maint(maint_mu_);
  const engine::Relation* existing = storage_.FindTable(table);
  if (existing == nullptr) {
    return Status::NotFound("table '" + table + "'");
  }
  const catalog::Table* meta = catalog_.FindTable(table);
  for (const Row& row : rows) {
    if (row.size() != meta->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
  }
  SUMTAB_RETURN_NOT_OK(LogRowsOp(
      static_cast<uint8_t>(wal::RecordType::kBulkLoad), meta->name, rows));
  engine::Relation updated = *existing;
  for (Row& row : rows) updated.rows.push_back(std::move(row));
  // Commit: publish the new version and bump the epoch in one exclusive
  // window. Queries that pinned a snapshot before this point keep reading
  // the pre-load rows.
  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    SUMTAB_RETURN_NOT_OK(storage_.Replace(table, std::move(updated)));
    // BulkLoad deliberately does not maintain summary tables; bumping the
    // epoch is what flips dependent ASTs to kStale so the rewriter stops
    // serving pre-load answers through them.
    storage_.BumpEpoch(table);
  }
  MaybeCheckpointLocked();
  return Status::OK();
}

StatusOr<int64_t> Database::DefineSummaryTable(const std::string& name,
                                               const std::string& sql) {
  return DefineSummaryTable(name, sql, /*advisor_owned=*/false);
}

StatusOr<int64_t> Database::DefineSummaryTable(const std::string& name,
                                               const std::string& sql,
                                               bool advisor_owned) {
  // Parse + materialize under maint_mu_ alone (catalog/storage are stable:
  // no other mutator can run); only the registration commits under ddl_mu_.
  std::lock_guard<std::mutex> maint(maint_mu_);
  if (catalog_.FindTable(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));

  // Materialize.
  engine::Executor executor(storage_);
  SUMTAB_ASSIGN_OR_RETURN(engine::Relation data, executor.Execute(graph));
  int64_t rows = static_cast<int64_t>(data.NumRows());

  // The definition parsed, built, and materialized — it will publish, so it
  // is safe (and required) to harden its record before the commit window.
  SUMTAB_RETURN_NOT_OK(LogDefineOp(name, sql, advisor_owned));

  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    // Register in the catalog with inferred column types.
    const qgm::Box* root = graph.box(graph.root());
    catalog::Table table;
    table.name = name;
    table.is_summary_table = true;
    for (int i = 0; i < root->NumOutputs(); ++i) {
      catalog::Column col;
      col.name = root->outputs[i].name;
      col.type = root->column_info[i].type;
      col.nullable = root->column_info[i].nullable;
      table.columns.push_back(std::move(col));
    }
    SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
    SUMTAB_RETURN_NOT_OK(storage_.AddTable(name, std::move(data)));

    auto st = std::make_shared<SummaryTable>();
    st->name = ToLower(name);
    st->sql = sql;
    st->graph = std::move(graph);
    st->advisor_owned = advisor_owned;
    st->created_at_query = queries_observed_.load(std::memory_order_acquire);
    MarkRefreshed(st.get());  // bumps the catalog generation
    summary_tables_.push_back(std::move(st));
  }
  MaybeCheckpointLocked();
  return rows;
}

Status Database::DropSummaryTable(const std::string& name) {
  std::lock_guard<std::mutex> maint(maint_mu_);
  std::string key = ToLower(name);
  // The registry only changes under maint_mu_ + exclusive ddl_mu_, so this
  // existence check is stable through the log + publish below.
  if (FindSummaryTable(key) == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  SUMTAB_RETURN_NOT_OK(
      LogNameOp(static_cast<uint8_t>(wal::RecordType::kDropSummary), key));
  Status dropped;
  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    for (size_t i = 0; i < summary_tables_.size(); ++i) {
      if (summary_tables_[i]->name == key) {
        // In-flight queries that spliced this AST in keep it alive through
        // their shared_ptr refs; only the registry entry goes away.
        summary_tables_.erase(summary_tables_.begin() + i);
        break;
      }
    }
    BumpGeneration();
    // Note: the catalog keeps the (now dangling) table entry out of
    // simplicity; queries naming it will fail at execution.
    dropped = storage_.DropTable(key);
  }
  MaybeCheckpointLocked();
  return dropped;
}

std::vector<std::string> Database::SummaryTableNames() const {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  std::vector<std::string> names;
  for (const auto& st : summary_tables_) names.push_back(st->name);
  return names;
}

int64_t Database::TableRows(const std::string& name) const {
  // Pin a snapshot so a concurrent Replace can't free the version mid-read.
  engine::Storage::Snapshot snap = storage_.Snap();
  const engine::Relation* rel = snap.FindTable(name);
  return rel == nullptr ? 0 : static_cast<int64_t>(rel->NumRows());
}

// ---- freshness bookkeeping ----

Database::SummaryTablePtr Database::FindSummaryTable(
    const std::string& name) const {
  std::string key = ToLower(name);
  for (const auto& st : summary_tables_) {
    if (st->name == key) return st;
  }
  return nullptr;
}

int64_t Database::StalenessOf(const SummaryTable& st) const {
  int64_t lag = 0;
  for (const auto& [table, epoch] : st.materialized_epochs) {
    int64_t current = storage_.Epoch(table);
    if (current > epoch) lag += current - epoch;
  }
  return lag;
}

AstState Database::StateOf(const SummaryTable& st) const {
  if (st.disabled.load(std::memory_order_acquire)) return AstState::kDisabled;
  return StalenessOf(st) > 0 ? AstState::kStale : AstState::kFresh;
}

bool Database::UsableForRewrite(const SummaryTable& st,
                                bool allow_stale) const {
  if (st.disabled.load(std::memory_order_acquire)) {
    return false;  // quarantine overrides everything
  }
  int64_t lag = StalenessOf(st);
  return lag == 0 || lag <= st.max_staleness || allow_stale;
}

void Database::RecordAstFailure(SummaryTable* st) {
  // Called from concurrent queries' post-execution paths without ddl_mu_;
  // fetch_add keeps the streak exact under racing failures.
  int streak =
      st->consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (streak >= kQuarantineThreshold) {
    st->disabled.store(true, std::memory_order_release);
  }
}

void Database::MarkRefreshed(SummaryTable* st) {
  st->materialized_epochs.clear();
  for (const std::string& table : matching::LeafBaseTables(st->graph)) {
    st->materialized_epochs[ToLower(table)] = storage_.Epoch(table);
  }
  st->consecutive_failures.store(0, std::memory_order_release);
  st->disabled.store(false, std::memory_order_release);
  // A define/refresh/revival changes which rewrites a fresh search would
  // pick, so cached plans from before it must be re-searched.
  BumpGeneration();
}

StatusOr<SummaryTableInfo> Database::GetSummaryTableInfo(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  SummaryTablePtr st = FindSummaryTable(name);
  if (st == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  SummaryTableInfo info;
  info.name = st->name;
  info.sql = st->sql;
  info.state = StateOf(*st);
  info.staleness = StalenessOf(*st);
  info.max_staleness = st->max_staleness;
  info.consecutive_failures =
      st->consecutive_failures.load(std::memory_order_acquire);
  info.compensated_queries =
      st->compensated_queries.load(std::memory_order_acquire);
  info.advisor_owned = st->advisor_owned;
  info.rewrite_hits = st->rewrite_hits.load(std::memory_order_acquire);
  info.queries_since_creation =
      std::max<int64_t>(0, queries_observed_.load(std::memory_order_acquire) -
                               st->created_at_query);
  return info;
}

// ---- workload log ----

WorkloadSnapshot Database::WorkloadLogSnapshot() const {
  return workload_log_.Snapshot();
}

void Database::ClearWorkloadLog() { workload_log_.Clear(); }

int64_t Database::QueriesObserved() const {
  return queries_observed_.load(std::memory_order_acquire);
}

Status Database::SetMaxStaleness(const std::string& name,
                                 int64_t max_epoch_lag) {
  if (max_epoch_lag < 0) {
    return Status::InvalidArgument("max staleness must be >= 0");
  }
  std::lock_guard<std::mutex> maint(maint_mu_);
  SummaryTablePtr st = FindSummaryTable(name);
  if (st == nullptr) {
    return Status::NotFound("summary table '" + name + "'");
  }
  SUMTAB_RETURN_NOT_OK(LogStalenessOp(ToLower(name), max_epoch_lag));
  {
    std::unique_lock<std::shared_mutex> lock(ddl_mu_);
    st->max_staleness = max_epoch_lag;
    BumpGeneration();  // staleness tolerance changes rewrite eligibility
  }
  MaybeCheckpointLocked();
  return Status::OK();
}

std::unique_ptr<qgm::Graph> Database::TryRewrite(
    const qgm::Graph& query, const engine::Storage::Snapshot& snap,
    const QueryOptions& options, std::string* chosen, int* candidates,
    std::vector<SummaryTablePtr>* used_refs, QueryDegradation* degradation,
    QueryTrace* trace,
    std::shared_ptr<const matching::CompensationPlan>* compensation) {
  *candidates = 0;
  // EXPLAIN REWRITE also reports, per AST, whether an append to each of its
  // base tables would merge incrementally — computed once (round 0) and only
  // when tracing.
  auto maintenance_verdict = [](const SummaryTable& st) {
    std::string verdict;
    for (const std::string& table : matching::LeafBaseTables(st.graph)) {
      StatusOr<maintenance::MergePlan> plan =
          maintenance::AnalyzeMergePlan(st.graph, table);
      if (!verdict.empty()) verdict += ", ";
      verdict += table;
      verdict += "=";
      if (plan.ok()) {
        verdict += plan->spj_append ? "incremental(spj)" : "incremental";
      } else {
        verdict += RejectReasonToken(RejectReasonFromStatus(plan.status()));
      }
    }
    return verdict;
  };
  // Cost heuristic: total rows scanned at the leaves, counted against the
  // query's pinned snapshot so concurrent loads don't skew the comparison.
  auto leaf_cost = [&snap](const qgm::Graph& graph) {
    int64_t cost = 0;
    for (int id = 0; id < graph.size(); ++id) {
      const qgm::Box* box = graph.box(id);
      if (box->kind == qgm::Box::Kind::kBase) {
        const engine::Relation* rel = snap.FindTable(box->table_name);
        if (rel != nullptr) cost += static_cast<int64_t>(rel->NumRows());
      }
    }
    return cost;
  };

  // Iterative rerouting (paper Sec. 7): match the best AST, then feed the
  // rewritten query back through the remaining ASTs — distinct subtrees
  // (e.g. a scalar subquery and the main block) can each land on their own
  // summary table.
  std::unique_ptr<qgm::Graph> current;
  int64_t current_cost = leaf_cost(query);
  std::vector<SummaryTablePtr> used;
  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::unique_ptr<qgm::Graph> best;
    int64_t best_cost = current_cost;
    SummaryTablePtr best_st;
    // Round-0-only: a stale AST can still answer EXACTLY if its missing
    // updates are retained as append deltas — the two-leg delta-compensation
    // path (DESIGN.md §13). Its candidates compete on cost with ordinary
    // rewrites; a win ends the iterative search, since the merged answer is
    // produced outside QGM and cannot be re-fed to the matcher.
    std::shared_ptr<matching::CompensationPlan> best_comp;
    SummaryTablePtr best_comp_st;
    int64_t best_comp_cost = 0;
    int64_t best_comp_rows = 0;
    int best_comp_attempt = -1;
    std::vector<AstAttemptTrace> attempts;  // this round's, when tracing
    int best_attempt = -1;                  // index into `attempts`
    for (const auto& st : summary_tables_) {
      if (!UsableForRewrite(*st, options.allow_stale_reads)) {
        bool disabled = st->disabled.load(std::memory_order_acquire);
        bool try_comp = round == 0 && !disabled && compensation != nullptr &&
                        options.enable_compensation;
        if (!try_comp) {
          if (trace != nullptr && round == 0) {
            trace->AddNote("ast '" + st->name + "' skipped: " +
                           (disabled ? "quarantined" : "stale"));
          }
          continue;
        }
        AstAttemptTrace attempt;
        AstAttemptTrace* attempt_ptr = nullptr;
        if (trace != nullptr) {
          attempt.ast_name = st->name;
          attempt.round = round;
          attempt.cost_before = static_cast<double>(current_cost);
          attempt.maintenance = maintenance_verdict(*st);
          attempt_ptr = &attempt;
        }
        // Which base tables lag the materialization? Compensation handles
        // exactly one (the merge key joins one AST leg to one delta leg).
        std::vector<std::pair<std::string, int64_t>> lagging;
        for (const auto& [table, epoch] : st->materialized_epochs) {
          if (snap.Epoch(table) > epoch) lagging.emplace_back(table, epoch);
        }
        StatusOr<matching::CompensationPlan> comp =
            [&]() -> StatusOr<matching::CompensationPlan> {
          if (lagging.size() != 1) {
            return RejectUnsupported(
                RejectReason::kCompMultiTableStaleness,
                std::to_string(lagging.size()) +
                    " base tables lag behind ast '" + st->name + "'");
          }
          const std::string& table = lagging[0].first;
          int64_t from = lagging[0].second;
          int64_t to = snap.Epoch(table);
          if (!snap.HasDeltaCoverage(table, from, to)) {
            return RejectUnsupported(
                RejectReason::kCompDeltaUnavailable,
                "no contiguous retained deltas for '" + table + "' epochs (" +
                    std::to_string(from) + ", " + std::to_string(to) + "]");
          }
          matching::SummaryTableDef def{st->name, &st->graph};
          SUMTAB_ASSIGN_OR_RETURN(
              matching::CompensationPlan plan,
              matching::BuildCompensationPlan(query, table, def, catalog_,
                                              attempt_ptr, trace));
          plan.from_epoch = from;
          plan.to_epoch = to;
          return plan;
        }();
        if (!comp.ok()) {
          if (trace != nullptr) {
            attempt.reason = RejectReasonFromStatus(comp.status());
            attempt.detail = comp.status().ToString();
            attempt.compensation = RejectReasonToken(attempt.reason);
            attempts.push_back(std::move(attempt));
          }
          continue;
        }
        ++*candidates;
        int64_t delta_rows =
            snap.DeltaRows(comp->stale_table, comp->from_epoch, comp->to_epoch);
        int64_t cost = leaf_cost(comp->ast_leg) + delta_rows;
        bool acceptable = cost <= current_cost &&
                          (best_comp == nullptr || cost < best_comp_cost);
        if (trace != nullptr) {
          attempt.produced = true;
          attempt.cost_after = static_cast<double>(cost);
          attempt.compensation =
              "compensated(" + std::to_string(delta_rows) + " delta rows, " +
              std::to_string(comp->to_epoch - comp->from_epoch) + " epochs)";
          if (!acceptable) attempt.detail = "costlier than the current plan";
        }
        if (acceptable) {
          best_comp =
              std::make_shared<matching::CompensationPlan>(std::move(*comp));
          best_comp_cost = cost;
          best_comp_rows = delta_rows;
          best_comp_st = st;
          if (trace != nullptr) {
            best_comp_attempt = static_cast<int>(attempts.size());
          }
        }
        if (trace != nullptr) attempts.push_back(std::move(attempt));
        continue;
      }
      matching::SummaryTableDef def{st->name, &st->graph};
      AstAttemptTrace attempt;
      AstAttemptTrace* attempt_ptr = nullptr;
      if (trace != nullptr) {
        attempt.ast_name = st->name;
        attempt.round = round;
        attempt.cost_before = static_cast<double>(current_cost);
        if (round == 0) attempt.maintenance = maintenance_verdict(*st);
        attempt_ptr = &attempt;
      }
      StatusOr<matching::RewriteResult> rewrite = matching::RewriteQuery(
          current != nullptr ? *current : query, def, catalog_, attempt_ptr,
          trace);
      if (!rewrite.ok()) {
        // A broken AST must not take down the search: skip it, count the
        // failure toward quarantine, and surface the event as degradation.
        RecordAstFailure(st.get());
        degradation->degraded = true;
        degradation->stage = "rewrite";
        if (!degradation->summary_table.empty()) {
          degradation->summary_table += "+";
        }
        degradation->summary_table += st->name;
        if (!degradation->message.empty()) degradation->message += "; ";
        degradation->message += rewrite.status().ToString();
        if (trace != nullptr) {
          attempt.reason = RejectReasonFromStatus(rewrite.status());
          attempt.detail = rewrite.status().ToString();
          attempts.push_back(std::move(attempt));
        }
        continue;
      }
      if (!rewrite->rewritten) {
        if (trace != nullptr) {
          attempt.num_matches = rewrite->num_matches;
          attempt.detail = "no match against the AST root";
          attempts.push_back(std::move(attempt));
        }
        continue;
      }
      if (round == 0) ++*candidates;
      int64_t cost = leaf_cost(rewrite->graph);
      // The first round takes any match (<=): even a same-size SPJ summary
      // table is worth using (filters/expressions are precomputed). Later
      // rounds demand strict improvement so the iteration terminates.
      bool acceptable = best == nullptr
                            ? (round == 0 ? cost <= current_cost
                                          : cost < current_cost)
                            : cost < best_cost;
      if (trace != nullptr) {
        attempt.produced = true;
        attempt.num_matches = rewrite->num_matches;
        attempt.cost_after = static_cast<double>(cost);
        if (!acceptable) attempt.detail = "costlier than the current plan";
      }
      if (acceptable) {
        best = std::make_unique<qgm::Graph>(std::move(rewrite->graph));
        best_cost = cost;
        best_st = st;
        if (trace != nullptr) best_attempt = static_cast<int>(attempts.size());
      }
      if (trace != nullptr) attempts.push_back(std::move(attempt));
    }
    // A compensation candidate wins only by strictly beating every ordinary
    // rewrite: at equal scan cost a fresh AST beats two-leg complexity.
    if (best_comp != nullptr &&
        (best == nullptr || best_comp_cost < best_cost)) {
      if (trace != nullptr) {
        if (best_comp_attempt >= 0) attempts[best_comp_attempt].chosen = true;
        for (AstAttemptTrace& attempt : attempts) {
          trace->AddAstAttempt(std::move(attempt));
        }
        trace->AddNote("delta compensation: stale ast '" + best_comp_st->name +
                       "' + " + std::to_string(best_comp_rows) +
                       " delta rows of '" + best_comp->stale_table + "'");
      }
      MetricsRegistry::Global().counter("rewrite.rewritten")->Increment();
      MetricsRegistry::Global().counter("rewrite.compensated")->Increment();
      *chosen = best_comp_st->name;
      *used_refs = {best_comp_st};
      *compensation = std::move(best_comp);
      return nullptr;
    }
    if (trace != nullptr) {
      if (best_attempt >= 0) attempts[best_attempt].chosen = true;
      for (AstAttemptTrace& attempt : attempts) {
        trace->AddAstAttempt(std::move(attempt));
      }
    }
    if (best == nullptr) break;
    current = std::move(best);
    current_cost = best_cost;
    if (used.empty() || used.back() != best_st) used.push_back(best_st);
  }
  if (current != nullptr) {
    MetricsRegistry::Global().counter("rewrite.rewritten")->Increment();
  }
  std::vector<std::string> names;
  for (const SummaryTablePtr& st : used) names.push_back(st->name);
  *chosen = Join(names, "+");
  *used_refs = std::move(used);
  return current;
}

StatusOr<QueryResult> Database::Query(const std::string& sql,
                                      const QueryOptions& options) {
  std::string inner_sql;
  if (sql::IsExplainRewrite(sql, &inner_sql)) {
    SUMTAB_ASSIGN_OR_RETURN(std::string text,
                            ExplainRewrite(inner_sql, options));
    QueryResult result;
    result.relation.column_names = {"explain rewrite"};
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      result.relation.rows.push_back(
          {Value::String(text.substr(start, end - start))});
      start = end + 1;
    }
    return result;
  }
  int64_t tune_budget = -1;
  if (sql::IsTuneStatement(sql, &tune_budget)) {
    advisor::AdvisorOptions tune_options;
    tune_options.budget_rows = tune_budget;
    SUMTAB_ASSIGN_OR_RETURN(advisor::TuneOutcome outcome,
                            advisor::AdviseAndApply(this, tune_options));
    QueryResult result;
    result.relation.column_names = {"action", "name", "rows", "detail"};
    for (const advisor::TuneAction& action : outcome.actions) {
      result.relation.rows.push_back(
          {Value::String(action.action), Value::String(action.name),
           Value::Int(action.rows), Value::String(action.detail)});
    }
    return result;
  }
  return QuerySelect(sql, options);
}

StatusOr<QueryResult> Database::QuerySelect(const std::string& sql,
                                            const QueryOptions& options) {
  static Counter* queries = MetricsRegistry::Global().counter("query.total");
  static Counter* degraded_queries =
      MetricsRegistry::Global().counter("query.degraded");
  static Counter* rewritten_queries =
      MetricsRegistry::Global().counter("query.rewritten");
  static Histogram* total_hist =
      MetricsRegistry::Global().histogram("query.latency");
  static Histogram* parse_hist =
      MetricsRegistry::Global().histogram("phase.parse");
  static Histogram* build_hist =
      MetricsRegistry::Global().histogram("phase.qgm_build");
  static Histogram* rewrite_hist =
      MetricsRegistry::Global().histogram("phase.rewrite");
  static Histogram* execute_hist =
      MetricsRegistry::Global().histogram("phase.execute");
  queries->Increment();
  ScopedLatency total_timer(total_hist);

  QueryResult result;
  if (options.collect_trace) result.trace = std::make_shared<QueryTrace>();
  QueryTrace* trace = result.trace.get();
  std::string cache_key;
  std::unique_ptr<qgm::Graph> plan;      // the graph to execute (owned)
  std::unique_ptr<qgm::Graph> original;  // base-table form, for fallback
  std::vector<SummaryTablePtr> used;     // ASTs the plan splices in (pinned)
  // Non-null when the query is served by the two-leg delta-compensation path
  // (stale AST + retained deltas); `plan` stays null then and `original`
  // holds the base-table fallback.
  std::shared_ptr<const matching::CompensationPlan> comp;
  int64_t comp_delta_rows = 0;
  bool was_rewritten = false;
  // Leaf rows a base-table plan scans (against the pinned snapshot): the
  // workload log's direct-cost figure. Cache hits reuse the memoized value.
  int64_t base_leaf_rows = 0;
  engine::Storage::Snapshot snap;
  int64_t plan_generation = 0;

  // Planning happens under the shared catalog lock: pin the storage
  // snapshot every later step reads, capture the generation, consult the
  // cache, and (on a miss) run parse -> QGM build -> match search. Loads and
  // DDL (exclusive holders) are ordered entirely before or after this block.
  {
    std::shared_lock<std::shared_mutex> lock(ddl_mu_);
    snap = storage_.Snap();
    plan_generation = catalog_generation_.load(std::memory_order_acquire);

    // 1. Plan-cache lookup: a hit skips parse -> QGM build -> match search.
    if (options.enable_plan_cache) {
      cache_key = PlanCacheKey(sql, options);
      CachedPlan cached;
      std::string cause;
      ShardedPlanCache::Lookup lookup = plan_cache_.LookupAndValidate(
          cache_key, PlanValidator(snap, plan_generation, options), &cached,
          &cause);
      if (trace != nullptr) {
        switch (lookup) {
          case ShardedPlanCache::Lookup::kHit:
            trace->SetPlanCache(PlanCacheOutcome::kHit, "");
            break;
          case ShardedPlanCache::Lookup::kMiss:
            trace->SetPlanCache(PlanCacheOutcome::kMiss, "");
            break;
          case ShardedPlanCache::Lookup::kInvalidated:
            trace->SetPlanCache(PlanCacheOutcome::kInvalidated, cause);
            break;
        }
      }
      if (lookup == ShardedPlanCache::Lookup::kHit) {
        result.plan_cache_hit = true;
        result.used_summary_table = cached.used_summary_table;
        result.summary_table = cached.summary_table;
        result.rewritten_sql = cached.rewritten_sql;
        result.candidate_rewrites = cached.candidate_rewrites;
        // The validator just vouched for these ASTs under this same lock, so
        // the lookups cannot miss; pin them for post-execution bookkeeping.
        for (const std::string& name : cached.used_asts) {
          if (SummaryTablePtr st = FindSummaryTable(name)) {
            used.push_back(std::move(st));
          }
        }
        was_rewritten = cached.used_summary_table;
        base_leaf_rows = cached.base_leaf_rows;
        comp = cached.compensation;
        if (comp != nullptr) {
          // For compensation entries the cached graph is the ORIGINAL
          // base-table form (the execution fallback); the immutable
          // compensation plan itself is shared, not copied.
          original = std::make_unique<qgm::Graph>(std::move(cached.plan));
        } else {
          plan = std::make_unique<qgm::Graph>(std::move(cached.plan));
        }
      }
    }

    // 2. Compile path (miss / invalidated / cache disabled).
    if (plan == nullptr && comp == nullptr) {
      int64_t t0 = MonotonicNanos();
      SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                              sql::Parse(sql));
      int64_t t1 = MonotonicNanos();
      SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph,
                              qgm::BuildGraph(*stmt, catalog_));
      int64_t t2 = MonotonicNanos();
      parse_hist->Record((t1 - t0) / 1000);
      build_hist->Record((t2 - t1) / 1000);
      if (trace != nullptr) {
        trace->RecordPhaseMicros(QueryTrace::kPhaseParse, (t1 - t0) / 1000);
        trace->RecordPhaseMicros(QueryTrace::kPhaseQgmBuild, (t2 - t1) / 1000);
      }
      original = std::make_unique<qgm::Graph>(std::move(graph));
      base_leaf_rows = LeafRowCost(*original, snap);
      if (options.enable_rewrite) {
        std::string chosen;
        int64_t rw0 = MonotonicNanos();
        std::unique_ptr<qgm::Graph> rewritten =
            TryRewrite(*original, snap, options, &chosen,
                       &result.candidate_rewrites, &used, &result.degradation,
                       trace, &comp);
        int64_t rw_micros = (MonotonicNanos() - rw0) / 1000;
        rewrite_hist->Record(rw_micros);
        if (trace != nullptr) {
          trace->RecordPhaseMicros(QueryTrace::kPhaseRewrite, rw_micros);
        }
        if (rewritten != nullptr) {
          StatusOr<std::string> new_sql = qgm::ToSql(*rewritten);
          if (new_sql.ok()) {
            result.used_summary_table = true;
            result.summary_table = chosen;
            result.rewritten_sql = std::move(*new_sql);
            was_rewritten = true;
            plan = std::move(rewritten);
          } else {
            // The rewrite can't be rendered/executed: degrade to base tables.
            for (const SummaryTablePtr& st : used) RecordAstFailure(st.get());
            result.degradation.degraded = true;
            result.degradation.stage = "rewrite";
            result.degradation.summary_table = chosen;
            if (!result.degradation.message.empty()) {
              result.degradation.message += "; ";
            }
            result.degradation.message += new_sql.status().ToString();
            used.clear();
          }
        } else if (comp != nullptr) {
          // Two-leg compensation won the search. Leg A (the AST scan) is the
          // closest single-statement rendering of the plan.
          StatusOr<std::string> leg_sql = qgm::ToSql(comp->ast_leg);
          result.used_summary_table = true;
          result.summary_table = chosen;
          result.rewritten_sql = leg_sql.ok() ? std::move(*leg_sql) : "";
          was_rewritten = true;
        }
      }
      if (plan == nullptr && comp == nullptr) {
        plan = std::make_unique<qgm::Graph>(qgm::Graph::CloneGraph(*original));
        used.clear();
      }
    }
  }  // ddl_mu_ released — execution must not hold the catalog lock.

  engine::ExecOptions exec_options;
  exec_options.disable_hash_join = options.disable_hash_join;
  exec_options.max_rows = options.max_rows;
  exec_options.timeout_millis = options.timeout_millis;
  // 0 = hardware concurrency; clamp so aggregation partition ids stay narrow.
  exec_options.max_threads =
      options.max_threads == 0
          ? ThreadPool::HardwareParallelism()
          : std::min(options.max_threads, 128);
  exec_options.trace = trace;
  exec_options.vectorized = options.vectorized;
  int64_t exec_start = MonotonicNanos();
  StatusOr<engine::Relation> data =
      comp != nullptr ? compensation::ExecuteCompensationPlan(
                            *comp, snap, exec_options, &comp_delta_rows)
                      : engine::Executor(snap, exec_options).Execute(*plan);
  if (!data.ok() && was_rewritten) {
    // Graceful degradation: the rewritten plan failed, so fall back to the
    // base tables — a summary table is an optimization, never a requirement.
    // The retry runs against the SAME pinned snapshot, so the answer still
    // reflects one consistent point in time.
    for (const SummaryTablePtr& st : used) RecordAstFailure(st.get());
    if (result.plan_cache_hit) plan_cache_.Forget(cache_key);  // broken entry
    result.degradation.degraded = true;
    result.degradation.stage = "execute";
    result.degradation.summary_table = result.summary_table;
    if (!result.degradation.message.empty()) result.degradation.message += "; ";
    result.degradation.message += data.status().ToString();
    result.used_summary_table = false;
    result.summary_table.clear();
    result.rewritten_sql.clear();
    comp.reset();  // the retry answers from base tables, not the deltas
    if (original == nullptr) {
      // Cache hit: the base-table form was never built this call. Re-parse
      // under the shared lock (the catalog may be newer than the snapshot;
      // for the table/column facts parsing needs, that is compatible).
      std::shared_lock<std::shared_mutex> lock(ddl_mu_);
      SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                              sql::Parse(sql));
      SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph,
                              qgm::BuildGraph(*stmt, catalog_));
      original = std::make_unique<qgm::Graph>(std::move(graph));
    }
    engine::Executor retry(snap, exec_options);
    data = retry.Execute(*original);
  }
  {
    int64_t exec_micros = (MonotonicNanos() - exec_start) / 1000;
    execute_hist->Record(exec_micros);
    if (trace != nullptr) {
      trace->RecordPhaseMicros(QueryTrace::kPhaseExecute, exec_micros);
    }
  }
  if (!data.ok()) return data.status();
  if (result.used_summary_table) {
    rewritten_queries->Increment();
    if (trace != nullptr) {
      trace->SetChosen(result.summary_table, result.rewritten_sql);
    }
  }
  if (result.degradation.degraded) degraded_queries->Increment();
  if (result.used_summary_table) {
    // Serving through the AST(s) worked: clear their failure streaks and
    // credit the hit (the advisor's auto-DROP lifecycle reads these).
    for (const SummaryTablePtr& st : used) {
      st->consecutive_failures.store(0, std::memory_order_release);
      st->rewrite_hits.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  if (comp != nullptr && result.used_summary_table) {
    static Counter* compensated_counter =
        MetricsRegistry::Global().counter("query.compensated");
    static Counter* compensated_rows_counter =
        MetricsRegistry::Global().counter("query.compensation_delta_rows");
    result.compensated = true;
    result.compensation_delta_rows = comp_delta_rows;
    result.compensation_epochs = comp->to_epoch - comp->from_epoch;
    compensated_counter->Increment();
    compensated_rows_counter->Increment(comp_delta_rows);
    for (const SummaryTablePtr& st : used) {
      st->compensated_queries.fetch_add(1, std::memory_order_acq_rel);
    }
    if (trace != nullptr) {
      trace->AddNote("compensated: " + std::to_string(comp_delta_rows) +
                     " delta rows over " +
                     std::to_string(result.compensation_epochs) +
                     " epoch(s) of '" + comp->stale_table + "'");
    }
  }
  // 3. Memoize the decision — only a plan that parsed, matched, and executed
  //    cleanly this call (a fallback plan is not the search's answer). The
  //    entry is stamped with the generation and epochs observed at planning
  //    time, so a load/DDL that raced past us invalidates it on next lookup
  //    instead of serving a stale decision as current.
  if (options.enable_plan_cache && !result.plan_cache_hit &&
      !result.degradation.degraded && original != nullptr) {
    CachedPlan entry;
    if (comp != nullptr) {
      // Cache the base-table form as the fallback graph; the compensation
      // plan itself is immutable and shared across hits.
      entry.plan = qgm::Graph::CloneGraph(*original);
      entry.compensation = comp;
    } else {
      entry.plan = std::move(*plan);
    }
    entry.used_summary_table = result.used_summary_table;
    entry.summary_table = result.summary_table;
    entry.rewritten_sql = result.rewritten_sql;
    entry.candidate_rewrites = result.candidate_rewrites;
    for (const SummaryTablePtr& st : used) entry.used_asts.push_back(st->name);
    entry.generation = plan_generation;
    entry.base_leaf_rows = base_leaf_rows;
    for (const std::string& table : matching::LeafBaseTables(*original)) {
      entry.base_epochs[ToLower(table)] = snap.Epoch(ToLower(table));
    }
    plan_cache_.Insert(cache_key, std::move(entry));
  }
  // 4. Feed the workload log — the advisor's input. Off for the advisor's
  //    own sizing probes (record_workload=false) so tuning doesn't observe
  //    itself.
  if (options.record_workload) {
    queries_observed_.fetch_add(1, std::memory_order_acq_rel);
    sumtab::WorkloadLog::QueryObservation obs;
    obs.normalized_sql = NormalizeSqlText(sql);
    obs.base_leaf_rows = base_leaf_rows;
    obs.rewritten = result.used_summary_table;
    obs.compensated = result.compensated;
    if (!obs.rewritten) {
      obs.reject =
          result.candidate_rewrites > 0 ? "costlier_than_base" : "no_match";
    }
    for (const SummaryTablePtr& st : used) obs.used_asts.push_back(st->name);
    workload_log_.RecordQuery(obs);
  }
  result.relation = std::move(*data);
  return result;
}

StatusOr<std::string> Database::Explain(const std::string& sql) {
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  engine::Storage::Snapshot snap = storage_.Snap();
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));
  std::string out = "-- original QGM --\n" + qgm::ToString(graph);
  std::string chosen;
  int candidates = 0;
  std::vector<SummaryTablePtr> used;
  QueryDegradation degradation;
  int skipped = 0;
  for (const auto& st : summary_tables_) {
    if (!UsableForRewrite(*st, /*allow_stale=*/false)) ++skipped;
  }
  std::unique_ptr<qgm::Graph> rewritten = TryRewrite(
      graph, snap, QueryOptions{}, &chosen, &candidates, &used, &degradation);
  out += "-- candidate rewrites: " + std::to_string(candidates) + "\n";
  if (skipped > 0) {
    out += "-- skipped " + std::to_string(skipped) +
           " stale/quarantined summary table(s)\n";
  }
  if (degradation.degraded) {
    out += "-- degraded (" + degradation.stage + "): " + degradation.message +
           "\n";
  }
  if (rewritten == nullptr) {
    out += "-- no summary table matches; executing against base tables\n";
    return out;
  }
  out += "-- rerouted through summary table: " + chosen + "\n";
  out += "-- rewritten QGM --\n" + qgm::ToString(*rewritten);
  SUMTAB_ASSIGN_OR_RETURN(std::string new_sql, qgm::ToSql(*rewritten));
  out += "-- rewritten SQL --\n" + new_sql + "\n";
  return out;
}

StatusOr<std::string> Database::ExplainRewrite(const std::string& sql,
                                               const QueryOptions& options) {
  QueryTrace trace;
  std::shared_lock<std::shared_mutex> lock(ddl_mu_);
  engine::Storage::Snapshot snap = storage_.Snap();
  int64_t generation = catalog_generation_.load(std::memory_order_acquire);

  // Plan-cache fate first, exactly as Query() would see it. This is a real
  // lookup — a hit refreshes the LRU, a stale entry is dropped — but EXPLAIN
  // never inserts, so explaining cannot seed the cache with an unexecuted
  // plan.
  if (options.enable_plan_cache) {
    CachedPlan cached;
    std::string cause;
    switch (plan_cache_.LookupAndValidate(
        PlanCacheKey(sql, options), PlanValidator(snap, generation, options),
        &cached, &cause)) {
      case ShardedPlanCache::Lookup::kHit:
        trace.SetPlanCache(PlanCacheOutcome::kHit, "");
        break;
      case ShardedPlanCache::Lookup::kMiss:
        trace.SetPlanCache(PlanCacheOutcome::kMiss, "");
        break;
      case ShardedPlanCache::Lookup::kInvalidated:
        trace.SetPlanCache(PlanCacheOutcome::kInvalidated, cause);
        break;
    }
  }

  int64_t t0 = MonotonicNanos();
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  int64_t t1 = MonotonicNanos();
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));
  int64_t t2 = MonotonicNanos();
  trace.RecordPhaseMicros(QueryTrace::kPhaseParse, (t1 - t0) / 1000);
  trace.RecordPhaseMicros(QueryTrace::kPhaseQgmBuild, (t2 - t1) / 1000);

  std::string chosen;
  int candidates = 0;
  std::vector<SummaryTablePtr> used;
  QueryDegradation degradation;
  int64_t rw0 = MonotonicNanos();
  std::unique_ptr<qgm::Graph> rewritten;
  std::shared_ptr<const matching::CompensationPlan> comp;
  if (options.enable_rewrite) {
    rewritten = TryRewrite(graph, snap, options, &chosen, &candidates, &used,
                           &degradation, &trace, &comp);
  } else {
    trace.AddNote("rewriting disabled by options");
  }
  trace.RecordPhaseMicros(QueryTrace::kPhaseRewrite,
                          (MonotonicNanos() - rw0) / 1000);
  if (rewritten != nullptr) {
    StatusOr<std::string> new_sql = qgm::ToSql(*rewritten);
    trace.SetChosen(chosen, new_sql.ok() ? *new_sql : "");
  } else if (comp != nullptr) {
    StatusOr<std::string> leg_sql = qgm::ToSql(comp->ast_leg);
    trace.SetChosen(chosen, leg_sql.ok() ? *leg_sql : "");
  }
  if (degradation.degraded) {
    trace.AddNote("degraded (" + degradation.stage +
                  "): " + degradation.message);
  }
  // Advisor-owned ASTs carry their lifecycle status into the trace so TUNE
  // decisions are EXPLAIN-able: who created the AST and how it is earning
  // its keep against the auto-DROP threshold.
  for (const auto& st : summary_tables_) {
    if (!st->advisor_owned) continue;
    int64_t hits = st->rewrite_hits.load(std::memory_order_acquire);
    int64_t window =
        queries_observed_.load(std::memory_order_acquire) -
        st->created_at_query;
    trace.AddNote("ast '" + st->name + "' is advisor-owned (" +
                  std::to_string(hits) + " rewrite hit(s) over " +
                  std::to_string(window < 0 ? 0 : window) +
                  " observed queries)");
  }

  std::string out = "== EXPLAIN REWRITE ==\n";
  out += "candidates: " + std::to_string(candidates) + "\n";
  out += trace.ToString();
  return out;
}

}  // namespace sumtab
