#include "sumtab/database.h"

#include "common/str_util.h"
#include "matching/rewriter.h"
#include "qgm/qgm_builder.h"
#include "qgm/qgm_print.h"
#include "qgm/qgm_to_sql.h"
#include "sql/parser.h"

namespace sumtab {

Database::Database() = default;
Database::~Database() = default;

Status Database::CreateTable(const std::string& name,
                             const std::vector<catalog::Column>& columns,
                             const std::vector<std::string>& primary_key) {
  catalog::Table table;
  table.name = name;
  table.columns = columns;
  table.primary_key = primary_key;
  SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
  engine::Relation empty;
  for (const catalog::Column& col : columns) {
    empty.column_names.push_back(ToLower(col.name));
  }
  return storage_.AddTable(name, std::move(empty));
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_column,
                               const std::string& parent_table,
                               const std::string& parent_column) {
  return catalog_.AddForeignKey(child_table, child_column, parent_table,
                                parent_column);
}

Status Database::BulkLoad(const std::string& table, std::vector<Row> rows) {
  const engine::Relation* existing = storage_.FindTable(table);
  if (existing == nullptr) {
    return Status::NotFound("table '" + table + "'");
  }
  const catalog::Table* meta = catalog_.FindTable(table);
  for (const Row& row : rows) {
    if (row.size() != meta->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
  }
  engine::Relation updated = *existing;
  for (Row& row : rows) updated.rows.push_back(std::move(row));
  SUMTAB_RETURN_NOT_OK(storage_.DropTable(table));
  return storage_.AddTable(table, std::move(updated));
}

StatusOr<int64_t> Database::DefineSummaryTable(const std::string& name,
                                               const std::string& sql) {
  if (catalog_.FindTable(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));

  // Materialize.
  engine::Executor executor(storage_);
  SUMTAB_ASSIGN_OR_RETURN(engine::Relation data, executor.Execute(graph));
  int64_t rows = static_cast<int64_t>(data.NumRows());

  // Register in the catalog with inferred column types.
  const qgm::Box* root = graph.box(graph.root());
  catalog::Table table;
  table.name = name;
  table.is_summary_table = true;
  for (int i = 0; i < root->NumOutputs(); ++i) {
    catalog::Column col;
    col.name = root->outputs[i].name;
    col.type = root->column_info[i].type;
    col.nullable = root->column_info[i].nullable;
    table.columns.push_back(std::move(col));
  }
  SUMTAB_RETURN_NOT_OK(catalog_.AddTable(std::move(table)));
  SUMTAB_RETURN_NOT_OK(storage_.AddTable(name, std::move(data)));

  auto st = std::make_unique<SummaryTable>();
  st->name = ToLower(name);
  st->sql = sql;
  st->graph = std::move(graph);
  summary_tables_.push_back(std::move(st));
  return rows;
}

Status Database::DropSummaryTable(const std::string& name) {
  std::string key = ToLower(name);
  for (size_t i = 0; i < summary_tables_.size(); ++i) {
    if (summary_tables_[i]->name == key) {
      summary_tables_.erase(summary_tables_.begin() + i);
      return storage_.DropTable(key);
      // Note: the catalog keeps the (now dangling) table entry out of
      // simplicity; queries naming it will fail at execution.
    }
  }
  return Status::NotFound("summary table '" + name + "'");
}

std::vector<std::string> Database::SummaryTableNames() const {
  std::vector<std::string> names;
  for (const auto& st : summary_tables_) names.push_back(st->name);
  return names;
}

int64_t Database::TableRows(const std::string& name) const {
  const engine::Relation* rel = storage_.FindTable(name);
  return rel == nullptr ? 0 : static_cast<int64_t>(rel->NumRows());
}

StatusOr<std::unique_ptr<qgm::Graph>> Database::TryRewrite(
    const qgm::Graph& query, std::string* chosen, int* candidates) {
  *candidates = 0;
  // Cost heuristic: total rows scanned at the leaves.
  auto leaf_cost = [this](const qgm::Graph& graph) {
    int64_t cost = 0;
    for (int id = 0; id < graph.size(); ++id) {
      const qgm::Box* box = graph.box(id);
      if (box->kind == qgm::Box::Kind::kBase) {
        cost += TableRows(box->table_name);
      }
    }
    return cost;
  };

  // Iterative rerouting (paper Sec. 7): match the best AST, then feed the
  // rewritten query back through the remaining ASTs — distinct subtrees
  // (e.g. a scalar subquery and the main block) can each land on their own
  // summary table.
  std::unique_ptr<qgm::Graph> current;
  int64_t current_cost = leaf_cost(query);
  std::vector<std::string> used;
  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::unique_ptr<qgm::Graph> best;
    int64_t best_cost = current_cost;
    std::string best_name;
    for (const auto& st : summary_tables_) {
      matching::SummaryTableDef def{st->name, &st->graph};
      StatusOr<matching::RewriteResult> rewrite = matching::RewriteQuery(
          current != nullptr ? *current : query, def, catalog_);
      if (!rewrite.ok()) return rewrite.status();
      if (!rewrite->rewritten) continue;
      if (round == 0) ++*candidates;
      int64_t cost = leaf_cost(rewrite->graph);
      // The first round takes any match (<=): even a same-size SPJ summary
      // table is worth using (filters/expressions are precomputed). Later
      // rounds demand strict improvement so the iteration terminates.
      bool acceptable = best == nullptr
                            ? (round == 0 ? cost <= current_cost
                                          : cost < current_cost)
                            : cost < best_cost;
      if (acceptable) {
        best = std::make_unique<qgm::Graph>(std::move(rewrite->graph));
        best_cost = cost;
        best_name = st->name;
      }
    }
    if (best == nullptr) break;
    current = std::move(best);
    current_cost = best_cost;
    if (used.empty() || used.back() != best_name) used.push_back(best_name);
  }
  *chosen = Join(used, "+");
  return current;
}

StatusOr<QueryResult> Database::Query(const std::string& sql,
                                      const QueryOptions& options) {
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));

  QueryResult result;
  const qgm::Graph* to_run = &graph;
  std::unique_ptr<qgm::Graph> rewritten;
  if (options.enable_rewrite) {
    std::string chosen;
    SUMTAB_ASSIGN_OR_RETURN(
        rewritten, TryRewrite(graph, &chosen, &result.candidate_rewrites));
    if (rewritten != nullptr) {
      result.used_summary_table = true;
      result.summary_table = chosen;
      SUMTAB_ASSIGN_OR_RETURN(result.rewritten_sql, qgm::ToSql(*rewritten));
      to_run = rewritten.get();
    }
  }
  engine::ExecOptions exec_options;
  exec_options.disable_hash_join = options.disable_hash_join;
  engine::Executor executor(storage_, exec_options);
  SUMTAB_ASSIGN_OR_RETURN(result.relation, executor.Execute(*to_run));
  return result;
}

StatusOr<std::string> Database::Explain(const std::string& sql) {
  SUMTAB_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                          sql::Parse(sql));
  SUMTAB_ASSIGN_OR_RETURN(qgm::Graph graph, qgm::BuildGraph(*stmt, catalog_));
  std::string out = "-- original QGM --\n" + qgm::ToString(graph);
  std::string chosen;
  int candidates = 0;
  SUMTAB_ASSIGN_OR_RETURN(std::unique_ptr<qgm::Graph> rewritten,
                          TryRewrite(graph, &chosen, &candidates));
  out += "-- candidate rewrites: " + std::to_string(candidates) + "\n";
  if (rewritten == nullptr) {
    out += "-- no summary table matches; executing against base tables\n";
    return out;
  }
  out += "-- rerouted through summary table: " + chosen + "\n";
  out += "-- rewritten QGM --\n" + qgm::ToString(*rewritten);
  SUMTAB_ASSIGN_OR_RETURN(std::string new_sql, qgm::ToSql(*rewritten));
  out += "-- rewritten SQL --\n" + new_sql + "\n";
  return out;
}

}  // namespace sumtab
