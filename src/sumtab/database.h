// Public facade: an embedded analytical database with Automatic Summary
// Tables. Create tables, declare RI constraints, load data, define summary
// tables (materialized aggregate views), and run SQL queries — which the
// engine transparently reroutes through a matching summary table whenever
// the paper's algorithm finds a rewrite.
//
// Quickstart:
//   sumtab::Database db;
//   db.CreateTable("trans", {{"faid", Type::kInt}, ...}, {"tid"});
//   db.BulkLoad("trans", rows);
//   db.DefineSummaryTable("ast1",
//       "select faid, flid, year(date) as year, count(*) as cnt "
//       "from trans group by faid, flid, year(date)");
//   auto result = db.Query("select ... from trans ... group by ...");
//   // result->used_summary_table == true when rerouted.
//
// Thread-safety (DESIGN.md, "Concurrent serving"): Query / Explain /
// ExplainRewrite / Stats may be called from any number of threads
// concurrently with each other and with the mutators (BulkLoad / Append /
// DefineSummaryTable / RefreshSummaryTable / DDL). Each query plans under a
// shared catalog lock and executes against a storage snapshot pinned at
// query start, so a concurrent load or maintenance pass never torn-reads a
// serving query — it either sees the whole change or none of it. The
// serving::Server / serving::Session layer adds admission control and
// inter-query scheduling on top of this class.
#ifndef SUMTAB_SUMTAB_DATABASE_H_
#define SUMTAB_SUMTAB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/executor.h"
#include "engine/relation.h"
#include "matching/compensation.h"
#include "qgm/qgm.h"
#include "sumtab/plan_cache.h"
#include "sumtab/workload_log.h"

namespace sumtab {

namespace wal {
class Writer;
struct CheckpointAst;
}  // namespace wal

/// Lifecycle state of a registered summary table (see DESIGN.md,
/// "Freshness and degradation semantics").
///   kFresh    — consistent with its base tables; eligible for rewriting.
///   kStale    — a base table changed under it (BulkLoad without refresh);
///               skipped by the rewriter unless the query opts into
///               staleness or the AST's max-staleness covers the lag.
///   kDisabled — quarantined after repeated failures; never used until a
///               successful refresh revives it.
enum class AstState { kFresh, kStale, kDisabled };

/// Durability configuration (DESIGN.md, "Durability and recovery"). Default
/// construction stays pure in-memory: the WAL/checkpoint machinery activates
/// only when `data_dir` is set and the Database comes from Database::Open().
struct DatabaseOptions {
  /// Directory for WAL segments and checkpoints. Empty = in-memory only.
  std::string data_dir;
  /// True (strict): every mutator hardens its WAL record — one fsync'd
  /// group-commit batch — BEFORE publishing the in-memory change, so the
  /// on-disk commit lattice matches the in-memory one and recovery can never
  /// surface state a concurrent reader could not have observed. False
  /// (relaxed): records flush within `group_commit_interval_micros`; a crash
  /// may lose that window of acknowledged mutations, but always as a clean
  /// prefix cut, never a torn state.
  bool wal_sync = true;
  /// Upper bound on how long a relaxed-mode record may sit unflushed.
  int64_t group_commit_interval_micros = 2000;
  /// Auto-checkpoint after this many logged operations (0 = manual
  /// Checkpoint() calls only). Checkpoints prune covered WAL segments.
  int64_t checkpoint_interval_records = 0;
  /// Run summary-table maintenance (refresh recomputes, incremental delta
  /// aggregation) on the vectorized engine. The row interpreter stays the
  /// semantic reference — the differential oracle's vectorized-maintenance
  /// legs pin both modes to bit-identical results — so this is a pure
  /// performance knob, on by default.
  bool vectorized_maintenance = true;
};

/// One noteworthy event from Database::Open()'s recovery pass.
struct RecoveryEvent {
  /// Stable snake_case kind (reject-reason tokens): "wal_torn_tail",
  /// "ast_dropped_on_recovery", "delta_dropped_on_recovery".
  std::string kind;
  std::string detail;
};

/// Durability counters in Database::Stats() (zero/false when in-memory).
struct DurabilityStats {
  bool enabled = false;
  uint64_t last_lsn = 0;     // last appended WAL record
  uint64_t durable_lsn = 0;  // last fsync'd WAL record
  int64_t wal_records = 0;   // appended by this process
  int64_t wal_bytes = 0;
  int64_t checkpoints_written = 0;
  uint64_t last_checkpoint_seq = 0;
  int64_t recovery_replayed_records = 0;  // WAL records replayed at Open()
  int64_t recovery_truncated_bytes = 0;   // torn tail bytes cut at Open()
  int64_t recovery_asts_dropped = 0;      // ASTs disabled by corrupt sections
  int64_t recovery_deltas_dropped = 0;    // delta slices lost to corruption
};

struct QueryOptions {
  /// Attempt rerouting through registered summary tables.
  bool enable_rewrite = true;
  /// Engine knob for the join-strategy ablation bench.
  bool disable_hash_join = false;
  /// Permit rerouting through kStale summary tables (answers may predate
  /// the latest loads). kDisabled tables are never used.
  bool allow_stale_reads = false;
  /// Permit delta-compensation rewrites: a kStale AST whose staleness is
  /// pure retained appends may still answer the query EXACTLY, as
  /// AST-scan ∪ same-shape aggregate over only the delta rows (DESIGN.md,
  /// "Delta compensation"). Unlike allow_stale_reads this never degrades
  /// the answer — it is on by default and gated per query only for
  /// ablation/benchmarks. Requires enable_rewrite.
  bool enable_compensation = true;
  /// Executor row budget (total materialized rows, join intermediates
  /// included); 0 = unbounded. Exceeded => kResourceExhausted.
  int64_t max_rows = 0;
  /// Executor wall-clock budget in milliseconds; 0 = none.
  double timeout_millis = 0;
  /// Max concurrent lanes for intra-query parallelism. 0 (the default)
  /// resolves to hardware concurrency; 1 is the single-threaded semantic
  /// reference (bit-identical to the pre-parallel engine).
  int max_threads = 0;
  /// Consult/populate the rewrite-plan cache. A hit skips the
  /// parse -> QGM-build -> match-search pipeline entirely; entries are
  /// validated against the catalog generation, base-table epochs, and the
  /// freshness state of every summary table they splice in.
  bool enable_plan_cache = true;
  /// Attach a QueryTrace to the result: per-phase wall times, every
  /// (query-box, AST) match attempt with its structured outcome, plan-cache
  /// fate, and rows processed. Off by default — the untraced path pays only
  /// null-pointer checks.
  bool collect_trace = false;
  /// Execute on the columnar batch engine (the default). false falls back to
  /// the row-at-a-time interpreter, kept as the semantic reference — results
  /// are bit-identical up to row order (see DESIGN.md, "Columnar batches and
  /// vectorized evaluation"). Execution knob only: like max_threads, it is
  /// deliberately NOT part of the plan-cache key, so both engines share one
  /// cached plan.
  bool vectorized = true;
  /// Record this query in the workload log (src/sumtab/workload_log.h) so
  /// the advisor can mine it. The advisor's own sizing probes turn this off
  /// to keep its introspection from polluting the telemetry it reads.
  bool record_workload = true;
};

/// Diagnostic attached to a QueryResult when something on the rewrite path
/// failed and the engine recovered by answering from base tables (or by
/// skipping the broken AST). The query itself still succeeded.
struct QueryDegradation {
  bool degraded = false;
  std::string stage;          // "rewrite" or "execute"
  std::string summary_table;  // implicated AST(s), '+'-joined
  std::string message;        // underlying failure, for logs
};

struct QueryResult {
  engine::Relation relation;
  bool used_summary_table = false;
  std::string summary_table;       // which AST answered the query
  std::string rewritten_sql;       // the NewQ form (empty if not rewritten)
  int candidate_rewrites = 0;      // how many ASTs offered a rewrite
  bool plan_cache_hit = false;     // served from the rewrite-plan cache
  /// The answer came from a STALE summary table plus a compensating
  /// aggregate over its retained append deltas (exact, not degraded).
  bool compensated = false;
  int64_t compensation_delta_rows = 0;  // delta rows the second leg scanned
  int64_t compensation_epochs = 0;      // epochs the delta range spanned
  QueryDegradation degradation;    // set when a failure was recovered
  /// Set when QueryOptions::collect_trace was on (shared so the executor's
  /// parallel lanes can keep counting rows while the caller holds it).
  std::shared_ptr<QueryTrace> trace;
};

/// Counters exposed by Database::Stats(). Hits/misses/invalidations
/// partition plan-cache lookups: an invalidation is a lookup that found an
/// entry but had to discard it (DDL generation change, base-table epoch
/// bump, or a spliced-in summary table no longer serviceable).
struct DatabaseStats {
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_invalidations = 0;
  int64_t plan_cache_entries = 0;
  /// Monotonic DDL counter (CreateTable / DefineSummaryTable / Drop /
  /// SetMaxStaleness / refresh); part of every cache entry's validity.
  int64_t catalog_generation = 0;
  /// Snapshot of the process-wide metrics registry (counters + latency
  /// histograms): query/rewrite/match/maintenance counters and per-phase
  /// timings. Process-wide, not per-Database.
  MetricsRegistry::Snapshot metrics;
  /// WAL/checkpoint/recovery counters (enabled=false when in-memory).
  DurabilityStats durability;
};

/// Introspection snapshot of one summary table's freshness bookkeeping.
struct SummaryTableInfo {
  std::string name;
  /// The defining SELECT (as registered). The advisor compares candidates
  /// against it (normalized) so TUNE never re-creates an existing AST.
  std::string sql;
  AstState state = AstState::kFresh;
  /// Total epoch lag across base tables (0 when fully fresh).
  int64_t staleness = 0;
  /// Lag this AST tolerates while still serving rewrites (default 0).
  int64_t max_staleness = 0;
  /// Consecutive rewrite-path failures since the last success/refresh.
  int consecutive_failures = 0;
  /// Queries this AST answered while stale, via delta compensation.
  int64_t compensated_queries = 0;
  /// True when the advisor created this AST (AdviseAndApply / TUNE): it is
  /// subject to the auto-DROP lifecycle when its hit rate decays.
  bool advisor_owned = false;
  /// Queries this AST's rewrite actually answered since creation.
  int64_t rewrite_hits = 0;
  /// Queries the database has observed since this AST was created — the
  /// denominator of the advisor's hit-rate decay check.
  int64_t queries_since_creation = 0;
};

class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- durability (src/wal/; DESIGN.md, "Durability and recovery") ----

  /// Opens a durable database on `options.data_dir` (created if missing):
  /// loads the latest checkpoint, replays the WAL past it (truncating any
  /// torn tail — repeated crashed recoveries converge on the same state),
  /// then starts logging to a fresh segment. A corrupt AST data section in
  /// the checkpoint drops only that AST (registered kDisabled; see
  /// recovery_events()) — the database still opens and serves every query
  /// from base tables. A corrupt meta/base-table section or a checkpoint
  /// version mismatch fails with a structured reject
  /// (checkpoint_corruption / checkpoint_version_mismatch).
  static StatusOr<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options);

  /// Snapshots base tables, AST contents AND the freshness bookkeeping
  /// (generation, per-table epochs, per-AST materialized epochs/staleness
  /// budget/quarantine) to a new checkpoint, then prunes covered WAL
  /// segments and older checkpoints. No-op error when in-memory.
  Status Checkpoint();

  /// What recovery found at Open(): torn tails truncated, ASTs dropped.
  const std::vector<RecoveryEvent>& recovery_events() const {
    return recovery_events_;
  }

  // ---- schema ----
  Status CreateTable(const std::string& name,
                     const std::vector<catalog::Column>& columns,
                     const std::vector<std::string>& primary_key = {});
  Status AddForeignKey(const std::string& child_table,
                       const std::string& child_column,
                       const std::string& parent_table,
                       const std::string& parent_column);

  // ---- data ----
  Status BulkLoad(const std::string& table, std::vector<Row> rows);

  // ---- maintenance (paper related problem (c), cf. Mumick et al. [10]) ----

  /// kFailed: the refresh attempt errored; the AST is left stale (and may
  /// be quarantined) but Append itself still succeeds — the base data is in.
  /// kDeferred: maintenance was skipped on purpose (AppendOptions::maintain
  /// false); the AST is stale but compensatable from the retained delta.
  enum class RefreshMode {
    kUnaffected,
    kIncremental,
    kRecompute,
    kFailed,
    kDeferred,
  };

  struct RefreshEntry {
    std::string summary_table;
    RefreshMode mode = RefreshMode::kUnaffected;
    double millis = 0;
    std::string error;  // set when mode == kFailed
  };

  struct MaintenanceReport {
    std::vector<RefreshEntry> entries;
  };

  /// Appends rows to a base table AND maintains every registered summary
  /// table. Single-block aggregate ASTs over one occurrence of the appended
  /// table (no HAVING, no DISTINCT aggregates, no scalar subqueries) refresh
  /// incrementally by aggregating only the delta and merging it into the
  /// materialized groups (count/sum add, min/max combine); everything else
  /// falls back to full recomputation. In contrast, plain BulkLoad does NOT
  /// maintain summary tables (bulk-load-then-define workflows).
  ///
  /// Either way the appended rows are additionally RETAINED as an
  /// addressable delta slice keyed by the epoch the append produced, so an
  /// AST left stale (deferred maintenance, or a failed phase-4 refresh) can
  /// still answer queries exactly via delta compensation.
  struct AppendOptions {
    /// False: skip AST maintenance entirely (no incremental merges, no
    /// recomputes) — the high-ingest mode delta compensation exists for.
    /// Dependent ASTs go stale; their entries report RefreshMode::kDeferred.
    bool maintain = true;
  };
  StatusOr<MaintenanceReport> Append(const std::string& table,
                                     std::vector<Row> rows,
                                     const AppendOptions& options);
  StatusOr<MaintenanceReport> Append(const std::string& table,
                                     std::vector<Row> rows) {
    return Append(table, std::move(rows), AppendOptions());
  }

  /// Full recomputation of one summary table from the base tables.
  Status RefreshSummaryTable(const std::string& name);

  /// Toggles DatabaseOptions::vectorized_maintenance after construction —
  /// lets default-constructed (in-memory) databases pick the maintenance
  /// engine; the differential tests run both modes against each other.
  void SetVectorizedMaintenance(bool vectorized) {
    options_.vectorized_maintenance = vectorized;
  }
  const DatabaseOptions& options() const { return options_; }

  // ---- summary tables ----
  /// Parses and materializes `sql` (executing it against the base tables),
  /// registers the result as table `name`, and makes it available to the
  /// rewriter. Returns the number of materialized rows.
  StatusOr<int64_t> DefineSummaryTable(const std::string& name,
                                       const std::string& sql);
  /// Same, but stamps the AST advisor-owned: the TUNE / AdviseAndApply
  /// lifecycle may auto-DROP it later when its hit rate decays. Ownership
  /// is WAL-logged and checkpointed, so it survives restart.
  StatusOr<int64_t> DefineSummaryTable(const std::string& name,
                                       const std::string& sql,
                                       bool advisor_owned);
  Status DropSummaryTable(const std::string& name);
  std::vector<std::string> SummaryTableNames() const;

  // ---- freshness ----
  /// Freshness/quarantine snapshot for one summary table.
  StatusOr<SummaryTableInfo> GetSummaryTableInfo(const std::string& name) const;
  /// Allows `name` to keep serving rewrites while its base tables are at
  /// most `max_epoch_lag` data changes ahead of its materialization
  /// (bounded staleness; 0 restores exact freshness).
  Status SetMaxStaleness(const std::string& name, int64_t max_epoch_lag);

  // ---- queries ----
  /// Also routes two statement forms besides plain SELECTs:
  /// "explain rewrite <select...>" (rewrite trace as a one-column relation)
  /// and "tune [budget <rows>]" (runs the workload advisor over the observed
  /// log and applies its recommendation; returns the action report).
  StatusOr<QueryResult> Query(const std::string& sql,
                              const QueryOptions& options = {});

  /// The rewrite decision without executing: original QGM, chosen AST (if
  /// any) and the rewritten SQL.
  StatusOr<std::string> Explain(const std::string& sql);

  /// Runs the full rewrite pipeline (plan-cache lookup included, execution
  /// excluded) with tracing on and renders the trace: chosen AST and
  /// compensation summary, every match attempt's pattern + structured
  /// reject reason (verbatim snake_case tokens), each AST's
  /// incremental-maintainability verdict, plan-cache hit/miss/invalidation
  /// cause, and phase timings. Also reachable through
  /// Query("explain rewrite <select...>"), which returns the same text as
  /// a single-column relation.
  StatusOr<std::string> ExplainRewrite(const std::string& sql,
                                       const QueryOptions& options = {});

  // ---- introspection ----
  const catalog::Catalog& catalog() const { return catalog_; }
  const engine::Storage& storage() const { return storage_; }
  /// Row count of a loaded table (0 if absent).
  int64_t TableRows(const std::string& name) const;
  /// Plan-cache and DDL counters (snapshot).
  DatabaseStats Stats() const;

  // ---- workload log (src/sumtab/workload_log.h; advisor input) ----
  /// Point-in-time copy of the observed workload: per normalized query the
  /// execution count, leaf-row costs, rewrite outcome and per-AST hit
  /// counts; per base table the append rate. Persisted across restarts via
  /// checkpoints (kWorkloadLog section).
  WorkloadSnapshot WorkloadLogSnapshot() const;
  void ClearWorkloadLog();
  /// Total SELECT queries observed (workload-recorded) since open/clear —
  /// the denominator of per-AST hit rates.
  int64_t QueriesObserved() const;

 private:
  struct SummaryTable {
    std::string name;
    std::string sql;
    qgm::Graph graph;  // definition over base tables
    /// Base-table epochs captured when the materialization last matched the
    /// base data (define / refresh / successful incremental maintenance).
    /// Written under the exclusive DDL lock; read under the shared lock.
    std::map<std::string, int64_t> materialized_epochs;
    int64_t max_staleness = 0;
    /// Failure/quarantine streaks are written from the post-execution path
    /// of concurrent queries (no lock held), so they are atomics.
    std::atomic<int> consecutive_failures{0};
    std::atomic<bool> disabled{false};  // quarantined until next refresh
    /// Queries answered while stale via delta compensation (post-execution
    /// path, no lock held).
    std::atomic<int64_t> compensated_queries{0};
    /// True when the advisor created this AST; persists across restart.
    bool advisor_owned = false;
    /// Queries whose winning rewrite spliced this AST in (post-execution
    /// path, no lock held).
    std::atomic<int64_t> rewrite_hits{0};
    /// Value of Database::queries_observed_ when this AST was registered;
    /// hit rate = rewrite_hits / (queries_observed_ - created_at_query).
    int64_t created_at_query = 0;
  };
  /// Queries keep shared_ptr copies of the ASTs their plan spliced in, so a
  /// concurrent DropSummaryTable cannot free an AST out from under the
  /// post-execution bookkeeping.
  using SummaryTablePtr = std::shared_ptr<SummaryTable>;

  /// Consecutive rewrite-path failures before an AST is quarantined.
  static constexpr int kQuarantineThreshold = 3;

  /// Max cached plans; least-recently-used entries are evicted beyond it.
  static constexpr size_t kPlanCacheCapacity = 256;

  std::string PlanCacheKey(const std::string& sql,
                           const QueryOptions& options) const;
  /// Validator bound to one query's pinned snapshot + planning generation.
  /// Must be invoked while holding ddl_mu_ (shared), since it consults the
  /// summary-table registry.
  ShardedPlanCache::Validator PlanValidator(
      const engine::Storage::Snapshot& snap, int64_t generation,
      const QueryOptions& options) const;
  /// DDL/AST-lifecycle change: bump the generation so every cached plan made
  /// before it is discarded on next lookup.
  void BumpGeneration();

  /// Best rewrite across the usable (fresh-enough, non-quarantined) ASTs —
  /// fewest estimated scanned rows against `snap`; null result when none
  /// matches. An AST whose match/rewrite errors is skipped (failure recorded
  /// for quarantine accounting and appended to `degradation`) instead of
  /// failing the search. `used_refs` receives the ASTs spliced into the
  /// rewrite. Caller holds ddl_mu_ (shared or exclusive).
  /// `compensation` (optional) receives a two-leg delta-compensation plan
  /// when a STALE AST wins via compensation instead; the returned graph is
  /// then null (the plan carries its own leg graphs).
  std::unique_ptr<qgm::Graph> TryRewrite(
      const qgm::Graph& query, const engine::Storage::Snapshot& snap,
      const QueryOptions& options, std::string* chosen, int* candidates,
      std::vector<SummaryTablePtr>* used_refs, QueryDegradation* degradation,
      QueryTrace* trace = nullptr,
      std::shared_ptr<const matching::CompensationPlan>* compensation =
          nullptr);

  /// Query() body for a plain SELECT (Query() itself also routes
  /// "explain rewrite" statements to ExplainRewrite()).
  StatusOr<QueryResult> QuerySelect(const std::string& sql,
                                    const QueryOptions& options);

  /// Epoch lag of `st` summed over its base tables.
  int64_t StalenessOf(const SummaryTable& st) const;
  AstState StateOf(const SummaryTable& st) const;
  bool UsableForRewrite(const SummaryTable& st, bool allow_stale) const;
  /// Counts a rewrite-path failure; quarantines at kQuarantineThreshold.
  void RecordAstFailure(SummaryTable* st);
  /// Marks `st` consistent with the current base epochs and revives it.
  void MarkRefreshed(SummaryTable* st);
  SummaryTablePtr FindSummaryTable(const std::string& name) const;
  /// Drops delta slices of `table` that every registered AST has already
  /// absorbed (min materialized epoch across non-disabled ASTs referencing
  /// it; everything when none do). Caller holds maint_mu_; pinned snapshots
  /// keep their slices via shared ownership.
  void PruneAbsorbedDeltas(const std::string& table);
  /// RefreshSummaryTable body; caller holds maint_mu_ but NOT ddl_mu_: the
  /// recompute runs against stable storage (maint_mu_ excludes other
  /// writers), then commits under a brief exclusive ddl_mu_ window.
  Status RefreshUnderMaint(SummaryTable* st);

  // ---- durability internals (src/sumtab/durability.cc) ----
  //
  // Each mutator, after its cheap validation and before its exclusive
  // ddl_mu_ publish window, calls the matching Log* helper: the operation's
  // logical record is appended and (strict mode) hardened, so a crash at any
  // point leaves the WAL holding exactly the operations whose effects were
  // published — never a published-but-unlogged op. All Log* helpers are
  // no-ops when durability is off or while recovery is replaying (the replay
  // re-executes mutators through their normal code paths; replaying_ stops
  // them from re-logging themselves). Caller holds maint_mu_.

  explicit Database(const DatabaseOptions& options);

  Status LogCreateTableOp(const catalog::Table& table);
  Status LogForeignKeyOp(const std::string& child_table,
                         const std::string& child_column,
                         const std::string& parent_table,
                         const std::string& parent_column);
  /// BulkLoad and Append share one body shape: table name + rows.
  Status LogRowsOp(uint8_t type, const std::string& table,
                   const std::vector<Row>& rows);
  /// Drop and refresh: just the summary table's name.
  Status LogNameOp(uint8_t type, const std::string& name);
  Status LogDefineOp(const std::string& name, const std::string& sql,
                     bool advisor_owned);
  Status LogStalenessOp(const std::string& name, int64_t max_epoch_lag);
  /// Appends + hardens (strict mode) one framed record. OK when in-memory.
  Status LogOp(uint8_t type, const std::string& body);

  /// Open() body: checkpoint load + WAL replay. No locks held (single
  ///-threaded: the Database has not been published yet).
  Status Recover();
  /// Re-executes one WAL record through the normal mutator code path.
  Status ApplyRecord(uint64_t lsn, uint8_t type, const std::string& body);
  /// Registers one checkpointed AST: catalog entry, stored data, registry
  /// entry with recovered freshness state. An AST whose data section was
  /// corrupt (or whose definition no longer builds) is dropped to kDisabled
  /// instead of failing recovery.
  Status RecoverAst(wal::CheckpointAst&& ast);
  /// Checkpoint body; caller holds maint_mu_ (and NOT ddl_mu_). Called at
  /// the END of mutators only — never mid-operation — so every logged
  /// record's effect is published before it can be snapshotted.
  Status CheckpointLocked();
  /// Auto-checkpoint when checkpoint_interval_records is due.
  void MaybeCheckpointLocked();

  DatabaseOptions options_;
  std::unique_ptr<wal::Writer> wal_;
  /// True while Recover() replays the WAL: Log* helpers become no-ops and
  /// Append routes every AST through the same refresh decisions it made
  /// live, so replay converges on the identical state.
  bool replaying_ = false;
  /// Written under maint_mu_; atomics so Stats() reads them lock-free.
  std::atomic<uint64_t> checkpoint_seq_{0};  // last checkpoint written/loaded
  std::atomic<int64_t> checkpoints_written_{0};
  int64_t records_since_checkpoint_ = 0;  // maint_mu_ only
  std::vector<RecoveryEvent> recovery_events_;
  int64_t recovery_replayed_ = 0;
  int64_t recovery_truncated_bytes_ = 0;
  int64_t recovery_asts_dropped_ = 0;
  int64_t recovery_deltas_dropped_ = 0;

  /// Serializes mutators (DDL, loads, maintenance) among themselves so each
  /// can run its expensive compute phase — full-table copy-on-write builds,
  /// delta aggregation, AST recomputes — without holding ddl_mu_ and thus
  /// without stalling query planning. Lock order: maint_mu_ before ddl_mu_,
  /// always; readers never touch maint_mu_.
  mutable std::mutex maint_mu_;
  /// Readers (query planning, freshness introspection) hold it shared;
  /// mutators commit under it exclusively — and only for the commit (the
  /// version pointer swaps + epoch/registry updates), microseconds even for
  /// a multi-megabyte append, since the new versions were built under
  /// maint_mu_ alone. Execution happens OUTSIDE the lock, against the
  /// query's pinned storage snapshot, so a long scan never blocks an Append.
  mutable std::shared_mutex ddl_mu_;
  catalog::Catalog catalog_;
  engine::Storage storage_;
  std::vector<SummaryTablePtr> summary_tables_;

  /// Rewrite-plan cache, mutex-sharded (src/sumtab/plan_cache.h); safe to
  /// consult from any thread.
  ShardedPlanCache plan_cache_;
  std::atomic<int64_t> catalog_generation_{0};

  /// Observed-workload telemetry (internally synchronized); the advisor's
  /// input. Persisted in checkpoints, restored by Recover().
  sumtab::WorkloadLog workload_log_;
  /// Workload-recorded SELECTs since open/clear (post-execution path, no
  /// lock held).
  std::atomic<int64_t> queries_observed_{0};
};

}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_DATABASE_H_
