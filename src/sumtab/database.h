// Public facade: an embedded analytical database with Automatic Summary
// Tables. Create tables, declare RI constraints, load data, define summary
// tables (materialized aggregate views), and run SQL queries — which the
// engine transparently reroutes through a matching summary table whenever
// the paper's algorithm finds a rewrite.
//
// Quickstart:
//   sumtab::Database db;
//   db.CreateTable("trans", {{"faid", Type::kInt}, ...}, {"tid"});
//   db.BulkLoad("trans", rows);
//   db.DefineSummaryTable("ast1",
//       "select faid, flid, year(date) as year, count(*) as cnt "
//       "from trans group by faid, flid, year(date)");
//   auto result = db.Query("select ... from trans ... group by ...");
//   // result->used_summary_table == true when rerouted.
#ifndef SUMTAB_SUMTAB_DATABASE_H_
#define SUMTAB_SUMTAB_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/relation.h"
#include "qgm/qgm.h"

namespace sumtab {

/// Lifecycle state of a registered summary table (see DESIGN.md,
/// "Freshness and degradation semantics").
///   kFresh    — consistent with its base tables; eligible for rewriting.
///   kStale    — a base table changed under it (BulkLoad without refresh);
///               skipped by the rewriter unless the query opts into
///               staleness or the AST's max-staleness covers the lag.
///   kDisabled — quarantined after repeated failures; never used until a
///               successful refresh revives it.
enum class AstState { kFresh, kStale, kDisabled };

struct QueryOptions {
  /// Attempt rerouting through registered summary tables.
  bool enable_rewrite = true;
  /// Engine knob for the join-strategy ablation bench.
  bool disable_hash_join = false;
  /// Permit rerouting through kStale summary tables (answers may predate
  /// the latest loads). kDisabled tables are never used.
  bool allow_stale_reads = false;
  /// Executor row budget (total materialized rows, join intermediates
  /// included); 0 = unbounded. Exceeded => kResourceExhausted.
  int64_t max_rows = 0;
  /// Executor wall-clock budget in milliseconds; 0 = none.
  double timeout_millis = 0;
};

/// Diagnostic attached to a QueryResult when something on the rewrite path
/// failed and the engine recovered by answering from base tables (or by
/// skipping the broken AST). The query itself still succeeded.
struct QueryDegradation {
  bool degraded = false;
  std::string stage;          // "rewrite" or "execute"
  std::string summary_table;  // implicated AST(s), '+'-joined
  std::string message;        // underlying failure, for logs
};

struct QueryResult {
  engine::Relation relation;
  bool used_summary_table = false;
  std::string summary_table;       // which AST answered the query
  std::string rewritten_sql;       // the NewQ form (empty if not rewritten)
  int candidate_rewrites = 0;      // how many ASTs offered a rewrite
  QueryDegradation degradation;    // set when a failure was recovered
};

/// Introspection snapshot of one summary table's freshness bookkeeping.
struct SummaryTableInfo {
  std::string name;
  AstState state = AstState::kFresh;
  /// Total epoch lag across base tables (0 when fully fresh).
  int64_t staleness = 0;
  /// Lag this AST tolerates while still serving rewrites (default 0).
  int64_t max_staleness = 0;
  /// Consecutive rewrite-path failures since the last success/refresh.
  int consecutive_failures = 0;
};

class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- schema ----
  Status CreateTable(const std::string& name,
                     const std::vector<catalog::Column>& columns,
                     const std::vector<std::string>& primary_key = {});
  Status AddForeignKey(const std::string& child_table,
                       const std::string& child_column,
                       const std::string& parent_table,
                       const std::string& parent_column);

  // ---- data ----
  Status BulkLoad(const std::string& table, std::vector<Row> rows);

  // ---- maintenance (paper related problem (c), cf. Mumick et al. [10]) ----

  /// kFailed: the refresh attempt errored; the AST is left stale (and may
  /// be quarantined) but Append itself still succeeds — the base data is in.
  enum class RefreshMode { kUnaffected, kIncremental, kRecompute, kFailed };

  struct RefreshEntry {
    std::string summary_table;
    RefreshMode mode = RefreshMode::kUnaffected;
    double millis = 0;
    std::string error;  // set when mode == kFailed
  };

  struct MaintenanceReport {
    std::vector<RefreshEntry> entries;
  };

  /// Appends rows to a base table AND maintains every registered summary
  /// table. Single-block aggregate ASTs over one occurrence of the appended
  /// table (no HAVING, no DISTINCT aggregates, no scalar subqueries) refresh
  /// incrementally by aggregating only the delta and merging it into the
  /// materialized groups (count/sum add, min/max combine); everything else
  /// falls back to full recomputation. In contrast, plain BulkLoad does NOT
  /// maintain summary tables (bulk-load-then-define workflows).
  StatusOr<MaintenanceReport> Append(const std::string& table,
                                     std::vector<Row> rows);

  /// Full recomputation of one summary table from the base tables.
  Status RefreshSummaryTable(const std::string& name);

  // ---- summary tables ----
  /// Parses and materializes `sql` (executing it against the base tables),
  /// registers the result as table `name`, and makes it available to the
  /// rewriter. Returns the number of materialized rows.
  StatusOr<int64_t> DefineSummaryTable(const std::string& name,
                                       const std::string& sql);
  Status DropSummaryTable(const std::string& name);
  std::vector<std::string> SummaryTableNames() const;

  // ---- freshness ----
  /// Freshness/quarantine snapshot for one summary table.
  StatusOr<SummaryTableInfo> GetSummaryTableInfo(const std::string& name) const;
  /// Allows `name` to keep serving rewrites while its base tables are at
  /// most `max_epoch_lag` data changes ahead of its materialization
  /// (bounded staleness; 0 restores exact freshness).
  Status SetMaxStaleness(const std::string& name, int64_t max_epoch_lag);

  // ---- queries ----
  StatusOr<QueryResult> Query(const std::string& sql,
                              const QueryOptions& options = {});

  /// The rewrite decision without executing: original QGM, chosen AST (if
  /// any) and the rewritten SQL.
  StatusOr<std::string> Explain(const std::string& sql);

  // ---- introspection ----
  const catalog::Catalog& catalog() const { return catalog_; }
  const engine::Storage& storage() const { return storage_; }
  /// Row count of a loaded table (0 if absent).
  int64_t TableRows(const std::string& name) const;

 private:
  struct SummaryTable {
    std::string name;
    std::string sql;
    qgm::Graph graph;  // definition over base tables
    /// Base-table epochs captured when the materialization last matched the
    /// base data (define / refresh / successful incremental maintenance).
    std::map<std::string, int64_t> materialized_epochs;
    int64_t max_staleness = 0;
    int consecutive_failures = 0;
    bool disabled = false;  // quarantined until the next successful refresh
  };

  /// Consecutive rewrite-path failures before an AST is quarantined.
  static constexpr int kQuarantineThreshold = 3;

  /// Best rewrite across the usable (fresh-enough, non-quarantined) ASTs —
  /// fewest estimated scanned rows; null result when none matches. An AST
  /// whose match/rewrite errors is skipped (failure recorded for quarantine
  /// accounting and appended to `degradation`) instead of failing the
  /// search. `used_asts` receives the ASTs spliced into the rewrite.
  std::unique_ptr<qgm::Graph> TryRewrite(const qgm::Graph& query,
                                         const QueryOptions& options,
                                         std::string* chosen, int* candidates,
                                         std::vector<std::string>* used_asts,
                                         QueryDegradation* degradation);

  /// Epoch lag of `st` summed over its base tables.
  int64_t StalenessOf(const SummaryTable& st) const;
  AstState StateOf(const SummaryTable& st) const;
  bool UsableForRewrite(const SummaryTable& st, bool allow_stale) const;
  /// Counts a rewrite-path failure; quarantines at kQuarantineThreshold.
  void RecordAstFailure(SummaryTable* st);
  /// Marks `st` consistent with the current base epochs and revives it.
  void MarkRefreshed(SummaryTable* st);
  SummaryTable* FindSummaryTable(const std::string& name);
  const SummaryTable* FindSummaryTable(const std::string& name) const;

  catalog::Catalog catalog_;
  engine::Storage storage_;
  std::vector<std::unique_ptr<SummaryTable>> summary_tables_;
};

}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_DATABASE_H_
