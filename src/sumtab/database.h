// Public facade: an embedded analytical database with Automatic Summary
// Tables. Create tables, declare RI constraints, load data, define summary
// tables (materialized aggregate views), and run SQL queries — which the
// engine transparently reroutes through a matching summary table whenever
// the paper's algorithm finds a rewrite.
//
// Quickstart:
//   sumtab::Database db;
//   db.CreateTable("trans", {{"faid", Type::kInt}, ...}, {"tid"});
//   db.BulkLoad("trans", rows);
//   db.DefineSummaryTable("ast1",
//       "select faid, flid, year(date) as year, count(*) as cnt "
//       "from trans group by faid, flid, year(date)");
//   auto result = db.Query("select ... from trans ... group by ...");
//   // result->used_summary_table == true when rerouted.
#ifndef SUMTAB_SUMTAB_DATABASE_H_
#define SUMTAB_SUMTAB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/relation.h"
#include "qgm/qgm.h"

namespace sumtab {

struct QueryOptions {
  /// Attempt rerouting through registered summary tables.
  bool enable_rewrite = true;
  /// Engine knob for the join-strategy ablation bench.
  bool disable_hash_join = false;
};

struct QueryResult {
  engine::Relation relation;
  bool used_summary_table = false;
  std::string summary_table;       // which AST answered the query
  std::string rewritten_sql;       // the NewQ form (empty if not rewritten)
  int candidate_rewrites = 0;      // how many ASTs offered a rewrite
};

class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- schema ----
  Status CreateTable(const std::string& name,
                     const std::vector<catalog::Column>& columns,
                     const std::vector<std::string>& primary_key = {});
  Status AddForeignKey(const std::string& child_table,
                       const std::string& child_column,
                       const std::string& parent_table,
                       const std::string& parent_column);

  // ---- data ----
  Status BulkLoad(const std::string& table, std::vector<Row> rows);

  // ---- maintenance (paper related problem (c), cf. Mumick et al. [10]) ----

  enum class RefreshMode { kUnaffected, kIncremental, kRecompute };

  struct RefreshEntry {
    std::string summary_table;
    RefreshMode mode = RefreshMode::kUnaffected;
    double millis = 0;
  };

  struct MaintenanceReport {
    std::vector<RefreshEntry> entries;
  };

  /// Appends rows to a base table AND maintains every registered summary
  /// table. Single-block aggregate ASTs over one occurrence of the appended
  /// table (no HAVING, no DISTINCT aggregates, no scalar subqueries) refresh
  /// incrementally by aggregating only the delta and merging it into the
  /// materialized groups (count/sum add, min/max combine); everything else
  /// falls back to full recomputation. In contrast, plain BulkLoad does NOT
  /// maintain summary tables (bulk-load-then-define workflows).
  StatusOr<MaintenanceReport> Append(const std::string& table,
                                     std::vector<Row> rows);

  /// Full recomputation of one summary table from the base tables.
  Status RefreshSummaryTable(const std::string& name);

  // ---- summary tables ----
  /// Parses and materializes `sql` (executing it against the base tables),
  /// registers the result as table `name`, and makes it available to the
  /// rewriter. Returns the number of materialized rows.
  StatusOr<int64_t> DefineSummaryTable(const std::string& name,
                                       const std::string& sql);
  Status DropSummaryTable(const std::string& name);
  std::vector<std::string> SummaryTableNames() const;

  // ---- queries ----
  StatusOr<QueryResult> Query(const std::string& sql,
                              const QueryOptions& options = {});

  /// The rewrite decision without executing: original QGM, chosen AST (if
  /// any) and the rewritten SQL.
  StatusOr<std::string> Explain(const std::string& sql);

  // ---- introspection ----
  const catalog::Catalog& catalog() const { return catalog_; }
  const engine::Storage& storage() const { return storage_; }
  /// Row count of a loaded table (0 if absent).
  int64_t TableRows(const std::string& name) const;

 private:
  struct SummaryTable {
    std::string name;
    std::string sql;
    qgm::Graph graph;  // definition over base tables
  };

  /// Best rewrite across all registered ASTs (fewest estimated scanned
  /// rows); null result when none matches.
  StatusOr<std::unique_ptr<qgm::Graph>> TryRewrite(const qgm::Graph& query,
                                                   std::string* chosen,
                                                   int* candidates);

  catalog::Catalog catalog_;
  engine::Storage storage_;
  std::vector<std::unique_ptr<SummaryTable>> summary_tables_;
};

}  // namespace sumtab

#endif  // SUMTAB_SUMTAB_DATABASE_H_
