#include "sumtab/compensation_exec.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/reject_reason.h"
#include "engine/exec_shared.h"
#include "expr/expr_eval.h"
#include "sumtab/maintenance.h"

namespace sumtab {
namespace compensation {

// Result ordering goes through the executor's own ApplyOrderBy
// (engine/exec_shared.h) — sharing the definition makes ordering divergence
// between a compensated answer and a direct execution impossible.
using engine::exec_internal::ApplyOrderBy;

StatusOr<engine::Relation> ExecuteCompensationPlan(
    const matching::CompensationPlan& plan,
    const engine::Storage::Snapshot& snap, const engine::ExecOptions& options,
    int64_t* delta_rows_scanned) {
  std::vector<const engine::Relation*> slices =
      snap.DeltaSlices(plan.stale_table, plan.from_epoch, plan.to_epoch);
  if (slices.empty() && plan.from_epoch < plan.to_epoch) {
    // The planner validated coverage against this same snapshot, and pinned
    // slices cannot be pruned out from under it — reaching here means the
    // plan was cached against a different snapshot and validation let it
    // through; refuse rather than answer from partial history.
    return RejectUnsupported(
        RejectReason::kCompDeltaUnavailable,
        "retained delta slices for '" + plan.stale_table +
            "' are not pinned by this snapshot");
  }
  // Each slice's columnar twin is built once and cached on the slice, so a
  // repeatedly-compensated query scans columns at base-table speed.
  std::vector<std::shared_ptr<const engine::Batch>> slice_batches;
  if (options.vectorized) {
    slice_batches = snap.DeltaSliceColumnar(plan.stale_table, plan.from_epoch,
                                            plan.to_epoch);
  }
  if (delta_rows_scanned != nullptr) {
    *delta_rows_scanned =
        snap.DeltaRows(plan.stale_table, plan.from_epoch, plan.to_epoch);
  }

  // Both legs execute against the SAME pinned snapshot with the caller's
  // options (vectorized / parallel / budgets apply to each leg); only the
  // override differs — leg B reads the delta rows where the plan scans the
  // stale table. The delta leg runs once per retained slice: aggregates
  // that qualify for compensation decompose under union, so folding slice
  // partials one at a time equals aggregating the concatenation — without
  // ever copying the slices into one relation.
  engine::ExecOptions leg_options = options;
  leg_options.table_overrides = nullptr;
  engine::Executor ast_exec(snap, leg_options);
  SUMTAB_ASSIGN_OR_RETURN(engine::Relation ast_leg,
                          ast_exec.Execute(plan.ast_leg));

  auto exec_slice = [&](size_t i) -> StatusOr<engine::Relation> {
    std::map<std::string, const engine::Relation*> overrides;
    overrides[plan.stale_table] = slices[i];
    std::map<std::string, std::shared_ptr<const engine::Batch>> columnar;
    engine::ExecOptions slice_options = options;
    slice_options.table_overrides = &overrides;
    if (i < slice_batches.size()) {
      columnar[plan.stale_table] = slice_batches[i];
      slice_options.columnar_overrides = &columnar;
    }
    engine::Executor delta_exec(snap, slice_options);
    return delta_exec.Execute(plan.delta_leg);
  };

  if (plan.spj) {
    // SPJ: the legs partition the answer; concatenate and re-order.
    engine::Relation result = std::move(ast_leg);
    for (size_t i = 0; i < slices.size(); ++i) {
      SUMTAB_ASSIGN_OR_RETURN(engine::Relation delta_leg, exec_slice(i));
      result.rows.insert(result.rows.end(),
                         std::make_move_iterator(delta_leg.rows.begin()),
                         std::make_move_iterator(delta_leg.rows.end()));
    }
    ApplyOrderBy(plan.order_by, &result);
    return result;
  }

  // Keyed merge of the legs' groups — the same index + combine structure
  // (and the same MergeAggregateValues core) as Append's phase-3 merge, so
  // aggregate kinds land exactly where a full recompute would put them.
  engine::Relation merged = std::move(ast_leg);
  std::unordered_map<Row, size_t, RowHash> index;
  index.reserve(merged.rows.size());
  auto key_of = [&plan](const Row& row) {
    Row key;
    key.reserve(plan.key_positions.size());
    for (int c : plan.key_positions) key.push_back(row[c]);
    return key;
  };
  for (size_t i = 0; i < merged.rows.size(); ++i) {
    index.emplace(key_of(merged.rows[i]), i);
  }
  for (size_t s = 0; s < slices.size(); ++s) {
    SUMTAB_ASSIGN_OR_RETURN(engine::Relation delta_leg, exec_slice(s));
    for (Row& drow : delta_leg.rows) {
      auto it = index.find(key_of(drow));
      if (it == index.end()) {
        // A group born entirely inside the delta.
        index.emplace(key_of(drow), merged.rows.size());
        merged.rows.push_back(std::move(drow));
        continue;
      }
      Row& existing = merged.rows[it->second];
      for (const matching::CompensationShape::AggPosition& agg :
           plan.agg_positions) {
        existing[agg.pos] = maintenance::MergeAggregateValues(
            agg.func, existing[agg.pos], drow[agg.pos]);
      }
    }
  }

  // Residual: the original root's projections (lowered AVG included) and
  // HAVING, evaluated per merged group. Quantifier 0 of those expressions is
  // the GROUP-BY box, whose output layout the merged rows carry verbatim.
  engine::Relation result;
  result.column_names.reserve(plan.final_outputs.size());
  for (const qgm::OutputColumn& out : plan.final_outputs) {
    result.column_names.push_back(out.name);
  }
  std::vector<int> offsets = {0};
  for (const Row& row : merged.rows) {
    expr::EvalContext ctx;
    ctx.offsets = &offsets;
    ctx.row = &row;
    bool keep = true;
    for (const expr::ExprPtr& pred : plan.final_predicates) {
      SUMTAB_ASSIGN_OR_RETURN(bool pass, expr::EvalPredicate(pred, ctx));
      if (!pass) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    Row out;
    out.reserve(plan.final_outputs.size());
    for (const qgm::OutputColumn& o : plan.final_outputs) {
      SUMTAB_ASSIGN_OR_RETURN(Value v, expr::Eval(o.expr, ctx));
      out.push_back(std::move(v));
    }
    result.rows.push_back(std::move(out));
  }
  ApplyOrderBy(plan.order_by, &result);
  return result;
}

}  // namespace compensation
}  // namespace sumtab
