#include "sumtab/plan_cache.h"

namespace sumtab {

ShardedPlanCache::ShardedPlanCache(size_t capacity) {
  shard_capacity_ = capacity / kNumShards;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (int i = 0; i < kNumShards; ++i) {
    const std::string prefix = "plan_cache.shard" + std::to_string(i);
    shards_[i].hits_counter = registry.counter(prefix + ".hits");
    shards_[i].misses_counter = registry.counter(prefix + ".misses");
    shards_[i].invalidations_counter =
        registry.counter(prefix + ".invalidations");
    shards_[i].contention_counter = registry.counter(prefix + ".contention");
  }
}

ShardedPlanCache::Shard& ShardedPlanCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

std::unique_lock<std::mutex> ShardedPlanCache::Lock(const Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Another query is in this shard right now: count it, then block. The
    // counter is how the bench proves sharding moved contention off the
    // warm path.
    shard.contention_counter->Increment();
    lock.lock();
  }
  return lock;
}

ShardedPlanCache::Lookup ShardedPlanCache::LookupAndValidate(
    const std::string& key, const Validator& validator, CachedPlan* out,
    std::string* invalidation_cause) {
  static Counter* hits = MetricsRegistry::Global().counter("plan_cache.hits");
  static Counter* misses =
      MetricsRegistry::Global().counter("plan_cache.misses");
  static Counter* invalidations =
      MetricsRegistry::Global().counter("plan_cache.invalidations");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock = Lock(shard);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    shard.misses_counter->Increment();
    misses->Increment();
    return Lookup::kMiss;
  }
  std::string cause = validator(it->second.plan);
  if (!cause.empty()) {
    ++shard.invalidations;
    shard.invalidations_counter->Increment();
    invalidations->Increment();
    if (invalidation_cause != nullptr) *invalidation_cause = cause;
    shard.lru.erase(it->second.lru_pos);
    shard.entries.erase(it);
    return Lookup::kInvalidated;
  }
  ++shard.hits;
  shard.hits_counter->Increment();
  hits->Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  const CachedPlan& entry = it->second.plan;
  out->plan = qgm::Graph::CloneGraph(entry.plan);
  out->used_summary_table = entry.used_summary_table;
  out->summary_table = entry.summary_table;
  out->rewritten_sql = entry.rewritten_sql;
  out->candidate_rewrites = entry.candidate_rewrites;
  out->used_asts = entry.used_asts;
  out->compensation = entry.compensation;
  out->generation = entry.generation;
  out->base_epochs = entry.base_epochs;
  out->base_leaf_rows = entry.base_leaf_rows;
  return Lookup::kHit;
}

void ShardedPlanCache::Insert(const std::string& key, CachedPlan entry) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock = Lock(shard);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.lru.erase(it->second.lru_pos);
    shard.entries.erase(it);
  }
  shard.lru.push_front(key);
  Node node;
  node.plan = std::move(entry);
  node.lru_pos = shard.lru.begin();
  shard.entries.emplace(key, std::move(node));
  while (shard.entries.size() > shard_capacity_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
  }
}

void ShardedPlanCache::Forget(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock = Lock(shard);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
}

ShardedPlanCache::Stats ShardedPlanCache::TotalStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock = Lock(shard);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.invalidations += shard.invalidations;
    stats.entries += static_cast<int64_t>(shard.entries.size());
  }
  return stats;
}

}  // namespace sumtab
